"""The campaign engine: resilient DAG execution with durable resume.

:class:`CampaignEngine` walks a :class:`~repro.campaigns.spec.
CampaignSpec`'s DAG in deterministic topological order, executing each
stage through a pluggable :class:`~repro.campaigns.backends.
ExecutionBackend` under the stage's own
:class:`~repro.experiments.resilience.FailurePolicy`:

- a failing attempt retries with deterministic, per-stage-jittered
  backoff;
- an exhausted policy under ``on_error="raise"`` aborts the campaign
  with :class:`~repro.errors.CampaignError`;
- under ``on_error="collect"`` the stage is marked failed and only its
  downstream cone is skipped — independent branches keep running;
- every terminal outcome is journaled (fsync'd) the moment it exists,
  and each completed stage's value is persisted to an atomic pickle —
  so :meth:`CampaignEngine.run` with ``resume=True`` after a SIGKILL
  replays completed stages from disk (zero re-execution, journal-
  asserted by the crash suite) and re-enters a half-done sweep stage
  through that stage's own point-level journal;
- stage-granular :class:`~repro.experiments.resilience.ChaosSpec`
  actions are injected orchestrator-side at each stage boundary, so a
  planned ``die`` is a whole-campaign SIGKILL at exactly that
  boundary.

Stage seeds derive from the campaign seed and stage *name* only
(:func:`stage_seed`), and scheduling order is a pure function of the
spec — so the final :meth:`CampaignResult.canonical` payload is
byte-identical across backends, worker counts, crash/resume cycles and
chaos plans.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaigns.backends import ExecutionBackend, create_backend
from repro.campaigns.journal import (
    STATUS_SKIPPED,
    CampaignJournal,
    StageOutcome,
    campaign_digest,
)
from repro.campaigns.spec import CampaignSpec, StageSpec, load_campaign
from repro.campaigns.steps import StageContext
from repro.errors import CampaignError, ConfigurationError
from repro.experiments.resilience import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMED_OUT,
    ChaosSpec,
    FailurePolicy,
)
from repro.experiments.sweep import _default_code_version, canonical_bytes
from repro.sim.rng import derive_seed


def stage_seed(campaign_seed: int, campaign: str, stage: str) -> int:
    """The derived seed one stage runs under.

    A pure function of (campaign seed, campaign name, stage name) —
    independent of execution order, backend, retries, and chaos — so
    every attempt of a stage, in any process, computes on identical
    randomness.

    >>> stage_seed(7, "demo", "grid") == stage_seed(7, "demo", "grid")
    True
    >>> stage_seed(7, "demo", "grid") == stage_seed(7, "demo", "report")
    False
    """
    return derive_seed(campaign_seed, f"campaign:{campaign}:{stage}")


def result_digest(value: Any) -> str:
    """Digest binding a journaled stage to its persisted value."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()[:16]


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    #: Stage name -> terminal outcome, for every stage in the spec.
    outcomes: Dict[str, StageOutcome]
    #: Stage name -> value, for stages that completed ok.
    values: Dict[str, Any]
    #: Deterministic topological order the stages were considered in.
    order: List[str]
    backend: str = "serial"
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes.values())

    def counts(self) -> Dict[str, int]:
        """Status -> stage count (for status lines and tables)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def resumed_stages(self) -> List[str]:
        """Stages replayed from the journal instead of executed."""
        return [
            name
            for name in self.order
            if self.outcomes[name].resumed
        ]

    def canonical(self) -> Dict[str, Any]:
        """The byte-identity payload: statuses and values only.

        Deliberately excludes timings, attempt counts and resume
        markers — everything that may legitimately differ between an
        uninterrupted run and a crash/resume cycle.  Two runs of the
        same spec are equivalent iff their canonical payloads (and
        hence :meth:`canonical_digest`) are byte-identical.
        """
        return {
            "campaign": self.spec.name,
            "seed": self.spec.seed,
            "stages": {
                name: {
                    "status": self.outcomes[name].status,
                    "value": self.values.get(name),
                }
                for name in self.order
            },
        }

    def canonical_digest(self) -> str:
        return hashlib.sha256(
            canonical_bytes(self.canonical())
        ).hexdigest()


@dataclass
class _StageState:
    spec: StageSpec
    policy: FailurePolicy
    attempts: int = 0
    failures: int = 0
    last_error: Optional[str] = None
    last_traceback: Optional[str] = None
    last_status: str = STATUS_FAILED
    attempt_seconds: List[float] = field(default_factory=list)
    inflight: bool = False

    def outcome(self, status: str, **extra: Any) -> StageOutcome:
        return StageOutcome(
            stage=self.spec.name,
            status=status,
            attempts=self.attempts,
            error=self.last_error if status != STATUS_OK else None,
            traceback=(
                self.last_traceback if status != STATUS_OK else None
            ),
            attempt_seconds=list(self.attempt_seconds),
            **extra,
        )


class CampaignEngine:
    """Execute (or resume) one campaign spec against a backend.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec`, or anything
        :func:`~repro.campaigns.spec.load_campaign` accepts (path,
        packaged name, mapping).
    state_dir:
        Campaign-private durable state: the stage journal, per-stage
        result pickles, and per-sweep-stage caches/journals all live
        here.  Reuse the same directory to resume.
    backend:
        A backend name from :data:`~repro.campaigns.backends.BACKENDS`
        or a ready :class:`ExecutionBackend` instance.
    workers:
        Worker budget (pool backends size themselves from it; it is
        also advertised to steps through ``StageContext.workers``).
    chaos:
        Optional stage-granular fault injection, applied at each stage
        boundary in the orchestrating process.
    """

    def __init__(
        self,
        spec: Any,
        state_dir: os.PathLike,
        backend: Any = "serial",
        workers: Optional[int] = None,
        chaos: Optional[ChaosSpec] = None,
        code_version: Optional[str] = None,
        store: Any = None,
    ) -> None:
        self.spec = load_campaign(spec)
        self.state_dir = Path(state_dir)
        self.workers = max(1, workers or 1)
        self.chaos = chaos
        self.code_version = code_version or _default_code_version()
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = create_backend(backend, workers=self.workers)
        self.dag = self.spec.dag()
        # Optional durable result store (a ResultStore or a directory):
        # stage journal + stage values go into SQLite instead of JSONL
        # + pickle files, with identical resume semantics.
        self.store = None
        if store is not None:
            from repro.store import ResultStore

            if isinstance(store, ResultStore):
                self.store = store
            else:
                self.store = ResultStore(
                    store, code_version=self.code_version
                )

    # -- durable state -------------------------------------------------------

    def journal(self) -> CampaignJournal:
        if self.store is not None:
            return self.store.campaign_journal(
                self.spec.name, self.spec.seed, self.code_version
            )
        return CampaignJournal.for_campaign(
            self.state_dir,
            self.spec.name,
            self.spec.seed,
            self.code_version,
        )

    def _results_dir(self) -> Path:
        digest = campaign_digest(
            self.spec.name, self.spec.seed, self.code_version
        )
        return self.state_dir / f"results-{digest}"

    def _result_path(self, stage: str) -> Path:
        return self._results_dir() / f"{stage}.pkl"

    def _campaign_id(self) -> int:
        return self.store.campaign_id(
            self.spec.name, self.spec.seed, self.code_version
        )

    def _persist_value(self, stage: str, value: Any) -> None:
        """Atomically pickle one stage's value (crash-safe)."""
        if self.store is not None:
            self.store.save_stage_value(
                self._campaign_id(), stage, result_digest(value), value
            )
            return
        path = self._result_path(stage)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover
                    pass
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _load_value(self, stage: str, expect_digest: Optional[str]):
        """(found, value) for a persisted stage result.

        Returns ``(False, None)`` when the pickle is missing,
        unreadable, or does not match the digest the journal promised
        — all of which mean "re-execute", never "crash".
        """
        if self.store is not None:
            return self.store.load_stage_value(
                self._campaign_id(), stage, expect_digest
            )
        path = self._result_path(stage)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            return False, None
        if (
            expect_digest is not None
            and result_digest(value) != expect_digest
        ):
            return False, None
        return True, value

    # -- status (read-only) --------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Journal-derived progress without locking or executing.

        Safe to call while another process runs the campaign (reads
        never take the writer lock).
        """
        journaled = self.journal().load()
        stages = {}
        for name in self.dag.order:
            outcome = journaled.get(name)
            stages[name] = {
                "status": outcome.status if outcome else "pending",
                "attempts": outcome.attempts if outcome else 0,
                "error": outcome.error if outcome else None,
            }
        done = sum(
            1 for entry in stages.values() if entry["status"] == STATUS_OK
        )
        return {
            "campaign": self.spec.name,
            "seed": self.spec.seed,
            "stages": stages,
            "completed": done,
            "total": len(stages),
        }

    # -- execution -----------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign; with ``resume=True``, continue it.

        A fresh run truncates the stage journal first; a resume
        replays every journaled terminal outcome (completed stages
        from their persisted values, permanent failures as failures)
        and executes only what is missing.
        """
        started = time.perf_counter()
        journal = self.journal()
        journal.acquire()
        try:
            if not resume:
                journal.reset()
            journaled = journal.load() if resume else {}
            result = self._execute(journal, journaled)
        finally:
            journal.close()
        result.wall_seconds = time.perf_counter() - started
        return result

    def _make_context(
        self, stage: StageSpec, values: Dict[str, Any]
    ) -> StageContext:
        return StageContext(
            stage=stage.name,
            params=dict(stage.params),
            seed=stage_seed(self.spec.seed, self.spec.name, stage.name),
            upstream={dep: values[dep] for dep in stage.after},
            workers=self.workers,
            state_dir=self.state_dir,
            code_version=self.code_version,
        )

    def _execute(
        self,
        journal: CampaignJournal,
        journaled: Dict[str, StageOutcome],
    ) -> CampaignResult:
        order = self.dag.order
        states = {
            name: _StageState(
                spec=self.dag.stages[name],
                policy=self.dag.stages[name].policy(),
            )
            for name in order
        }
        outcomes: Dict[str, StageOutcome] = {}
        values: Dict[str, Any] = {}
        #: Unmet-dependency counts (only ok dependencies unblock).
        blocked = {
            name: len(self.dag.stages[name].after) for name in order
        }
        skipped: set = set()
        #: (eligible_monotonic, stage) pairs sleeping out a backoff.
        waiting: List = []
        inflight = 0

        def finish_ok(
            name: str, outcome: StageOutcome, value: Any
        ) -> None:
            outcomes[name] = outcome
            values[name] = value
            for child in self.dag.successors(name):
                blocked[child] -= 1

        def finish_failed(name: str, outcome: StageOutcome) -> None:
            state = states[name]
            outcomes[name] = outcome
            if not state.policy.collects:
                raise CampaignError(
                    f"campaign {self.spec.name!r} aborted: "
                    + outcome.describe(),
                    outcome=outcome,
                )
            for descendant in self.dag.downstream_cone(name):
                if descendant in skipped or descendant in outcomes:
                    continue
                skipped.add(descendant)
                outcomes[descendant] = StageOutcome(
                    stage=descendant,
                    status=STATUS_SKIPPED,
                    attempts=0,
                    error=f"upstream stage {name!r} failed",
                )

        def replay(name: str) -> bool:
            """Serve one stage from the journal; False → execute it."""
            outcome = journaled.get(name)
            if outcome is None:
                return False
            if outcome.ok:
                found, value = self._load_value(
                    name, outcome.result_digest
                )
                if not found:
                    # The journal promised a value the disk no longer
                    # has (or has wrong) — re-execute; the fresh
                    # terminal line supersedes this one at compaction.
                    return False
                outcome.resumed = True
                finish_ok(name, outcome, value)
                return True
            outcome.resumed = True
            finish_failed(name, outcome)
            return True

        def terminal_failure(name: str, status: str) -> None:
            state = states[name]
            outcome = state.outcome(status)
            journal.record(outcome)
            finish_failed(name, outcome)

        def dispatch(name: str) -> None:
            nonlocal inflight
            state = states[name]
            state.attempts += 1
            state.inflight = True
            if self.chaos is not None:
                # Orchestrator-side: a planned "die" hard-exits right
                # here, between stages — the SIGKILL the resume path
                # exists for.  A "raise"/"hang" counts as a failed
                # attempt of this stage without dispatching it.
                try:
                    self.chaos.inject_stage(name, state.attempts)
                except Exception as exc:
                    state.inflight = False
                    state.failures += 1
                    state.last_error = f"{type(exc).__name__}: {exc}"
                    state.last_traceback = None
                    state.attempt_seconds.append(0.0)
                    if state.failures >= state.policy.max_attempts:
                        terminal_failure(name, STATUS_FAILED)
                    else:
                        waiting.append(
                            (
                                time.monotonic()
                                + state.policy.backoff_for(
                                    state.failures,
                                    key=self._backoff_key(name),
                                ),
                                name,
                            )
                        )
                    return
            inflight += 1
            self.backend.submit(
                name,
                state.spec.step,
                self._make_context(state.spec, values),
                timeout_seconds=state.policy.timeout_seconds,
            )

        def settle(name: str, report: tuple) -> None:
            nonlocal inflight
            inflight -= 1
            state = states[name]
            state.inflight = False
            kind = report[0]
            if kind == "ok":
                _, value, elapsed = report
                state.attempt_seconds.append(elapsed)
                state.last_error = state.last_traceback = None
                outcome = state.outcome(
                    STATUS_OK, result_digest=result_digest(value)
                )
                self._persist_value(name, value)
                # Value first, then the journal line that promises it:
                # a crash between the two re-executes the stage, never
                # trusts a phantom value.
                journal.record(outcome)
                finish_ok(name, outcome, value)
                return
            if kind == "err":
                _, error, trace, elapsed = report
                state.last_error = error
                state.last_traceback = trace
                state.last_status = STATUS_FAILED
            elif kind == "timeout":
                elapsed = report[1]
                state.last_error = (
                    f"stage exceeded its "
                    f"{state.policy.timeout_seconds}s timeout"
                )
                state.last_traceback = None
                state.last_status = STATUS_TIMED_OUT
            else:  # crashed
                elapsed = report[1]
                state.last_error = (
                    "worker process died while executing this stage"
                )
                state.last_traceback = None
                state.last_status = STATUS_CRASHED
            state.attempt_seconds.append(elapsed)
            state.failures += 1
            if state.failures >= state.policy.max_attempts:
                terminal_failure(name, state.last_status)
            else:
                waiting.append(
                    (
                        time.monotonic()
                        + state.policy.backoff_for(
                            state.failures, key=self._backoff_key(name)
                        ),
                        name,
                    )
                )

        self.backend.start()
        try:
            # Replay journaled history in topological order first, so
            # a replayed failure skips its cone before the scheduler
            # considers the cone runnable.
            for name in order:
                if name not in outcomes:
                    replay(name)

            dispatched: set = set()
            while len(outcomes) < len(order):
                # Release stages whose backoff has elapsed.
                now = time.monotonic()
                due = [item for item in waiting if item[0] <= now]
                for item in due:
                    waiting.remove(item)
                    dispatched.discard(item[1])

                progressed = False
                for name in order:
                    if inflight >= self.backend.capacity():
                        break
                    state = states[name]
                    if (
                        name in outcomes
                        or name in dispatched
                        or state.inflight
                        or blocked[name] > 0
                        or any(item[1] == name for item in waiting)
                    ):
                        continue
                    dispatched.add(name)
                    dispatch(name)
                    progressed = True

                if inflight > 0:
                    for name, report in self.backend.drain():
                        settle(name, report)
                        progressed = True
                if progressed or len(outcomes) >= len(order):
                    continue
                if waiting:
                    time.sleep(
                        max(
                            0.0,
                            min(item[0] for item in waiting)
                            - time.monotonic(),
                        )
                    )
                    continue
                raise CampaignError(  # pragma: no cover - invariant
                    f"campaign {self.spec.name!r} deadlocked with "
                    f"{len(order) - len(outcomes)} stages unrunnable"
                )
        finally:
            self.backend.stop()

        return CampaignResult(
            spec=self.spec,
            outcomes=outcomes,
            values=values,
            order=list(order),
            backend=self.backend.name,
        )

    def _backoff_key(self, stage: str) -> str:
        return f"campaign:{self.spec.name}:{stage}"


def run_campaign_spec(
    spec: Any,
    state_dir: os.PathLike,
    backend: str = "serial",
    workers: Optional[int] = None,
    resume: bool = False,
    chaos: Optional[ChaosSpec] = None,
    code_version: Optional[str] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec,
        state_dir,
        backend=backend,
        workers=workers,
        chaos=chaos,
        code_version=code_version,
    )
    return engine.run(resume=resume)
