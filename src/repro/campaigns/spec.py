"""Declarative campaign specs: named stages with dependencies.

A campaign is a small DAG of *stages*; each stage names a registered
step (see :mod:`repro.campaigns.steps`), carries its parameters, lists
the stages it depends on, and may override the per-stage failure
policy.  Specs round-trip through plain dicts, JSON, and TOML — a
checked-in ``.toml`` file is the unit of reproduction: one file, one
pipeline, one command (``repro-hpcqc campaign run <spec>``).

TOML shape::

    name = "e3-workflow"
    description = "E3 coscheduling pipeline"
    seed = 7

    [[stages]]
    name = "grid"
    step = "scenario.sweep"
    after = []
    retries = 2
    [stages.params]
    preset = "baseline-32"

Packaged specs live in ``repro/campaigns/data`` and are addressable by
bare name (:func:`load_campaign` tries the filesystem first, then the
package), so ``campaign run e3-workflow`` works from any directory.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from dataclasses import dataclass, field
from importlib import resources
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaigns.dag import CampaignDAG
from repro.errors import ConfigurationError
from repro.experiments.resilience import FailurePolicy

#: Suffix packaged campaign specs carry.
SPEC_SUFFIX = ".toml"


@dataclass(frozen=True)
class StageSpec:
    """One named stage of a campaign.

    Parameters
    ----------
    name:
        Stage identity — the journal key, the dependency handle, and
        the seed-derivation label, so renaming a stage deliberately
        invalidates its journaled outcome.
    step:
        A step registered in the
        :data:`~repro.campaigns.steps.StepRegistry` (e.g.
        ``"scenario.sweep"``).
    params:
        Keyword-style payload handed to the step through its
        :class:`~repro.campaigns.steps.StageContext`.
    after:
        Names of stages whose outputs this stage consumes.
    retries:
        Extra attempts after the first (``retries=2`` → up to 3
        executions), matching common CI vocabulary rather than the
        engine-internal ``max_attempts``.
    timeout_seconds:
        Per-attempt wall-clock budget; a stage that exceeds it is
        killed (pool backends) or abandoned and counted as a failed
        attempt.
    on_error:
        ``"raise"`` (default) fails the campaign when this stage's
        policy is exhausted; ``"collect"`` marks the stage failed,
        skips only its downstream cone, and lets independent branches
        keep running.
    backoff_seconds:
        Base retry delay (doubled per retry, jittered per stage key).

    >>> stage = StageSpec(name="grid", step="scenario.sweep",
    ...                   retries=2, on_error="collect")
    >>> stage.policy().max_attempts
    3
    >>> stage.policy().collects
    True
    """

    name: str
    step: str
    params: Mapping[str, Any] = field(default_factory=dict)
    after: Tuple[str, ...] = ()
    retries: int = 0
    timeout_seconds: Optional[float] = None
    on_error: str = "raise"
    backoff_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"stage name must be a non-empty string, got {self.name!r}"
            )
        if any(ch in self.name for ch in "/\\\n"):
            raise ConfigurationError(
                f"stage name {self.name!r} must not contain path "
                "separators or newlines (it names journal records and "
                "result files)"
            )
        if not self.step:
            raise ConfigurationError(
                f"stage {self.name!r} does not name a step"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"stage {self.name!r}: retries must be >= 0, "
                f"got {self.retries}"
            )
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(
            self, "after", tuple(str(dep) for dep in self.after)
        )
        # Validate the policy-shaped fields eagerly, at spec-build time.
        self.policy()

    def policy(self) -> FailurePolicy:
        """This stage's fields as a sweep-engine failure policy."""
        return FailurePolicy(
            max_attempts=self.retries + 1,
            timeout_seconds=self.timeout_seconds,
            on_error=self.on_error,
            backoff_seconds=self.backoff_seconds,
        )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["after"] = list(self.after)
        data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown StageSpec fields: {sorted(unknown)}"
            )
        payload = dict(data)
        if "after" in payload:
            payload["after"] = tuple(payload["after"])
        return cls(**payload)


@dataclass(frozen=True)
class CampaignSpec:
    """A named DAG of stages plus the campaign-wide seed.

    ``seed`` roots every stage's derived seed
    (:func:`~repro.campaigns.engine.stage_seed`); two campaigns that
    differ only in seed produce independent replications of the same
    pipeline.

    >>> spec = CampaignSpec(name="demo", stages=(
    ...     StageSpec(name="a", step="report.render"),
    ...     StageSpec(name="b", step="report.render", after=("a",)),
    ... ))
    >>> spec.dag().order
    ['a', 'b']
    >>> CampaignSpec.from_json(spec.to_json()) == spec
    True
    """

    name: str
    stages: Tuple[StageSpec, ...]
    description: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"campaign name must be a non-empty string, "
                f"got {self.name!r}"
            )
        stages = tuple(
            stage
            if isinstance(stage, StageSpec)
            else StageSpec.from_dict(stage)
            for stage in self.stages
        )
        if not stages:
            raise ConfigurationError(
                f"campaign {self.name!r} declares no stages"
            )
        object.__setattr__(self, "stages", stages)
        # Validate dependencies/cycles eagerly so a bad spec fails at
        # load time, not mid-run.
        self.dag()

    def dag(self) -> CampaignDAG:
        return CampaignDAG(self.stages)

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ConfigurationError(
            f"campaign {self.name!r} has no stage {name!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {"name", "description", "seed", "stages"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown CampaignSpec fields: {sorted(unknown)}"
            )
        stages = tuple(
            StageSpec.from_dict(stage) for stage in data.get("stages", ())
        )
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            seed=int(data.get("seed", 0)),
            stages=stages,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_toml(cls, text: str) -> "CampaignSpec":
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(
                f"campaign spec is not valid TOML: {exc}"
            ) from exc
        return cls.from_dict(data)


def _packaged_specs() -> Dict[str, Any]:
    """Name -> traversable for every packaged campaign spec."""
    specs: Dict[str, Any] = {}
    root = resources.files("repro.campaigns") / "data"
    try:
        entries = list(root.iterdir())
    except (FileNotFoundError, NotADirectoryError):
        return specs
    for entry in entries:
        if entry.name.endswith(SPEC_SUFFIX):
            specs[entry.name[: -len(SPEC_SUFFIX)]] = entry
    return specs


def list_campaigns() -> List[str]:
    """Names of the campaign specs shipped with the package.

    >>> "e3-workflow" in list_campaigns()
    True
    """
    return sorted(_packaged_specs())


def load_campaign(source: Any) -> CampaignSpec:
    """Load a spec from a path, a packaged name, or a mapping.

    Resolution order for strings: an existing file path first (TOML
    unless the suffix is ``.json``), then a packaged spec name from
    :func:`list_campaigns`.

    >>> load_campaign("e3-workflow").name
    'e3-workflow'
    """
    if isinstance(source, CampaignSpec):
        return source
    if isinstance(source, Mapping):
        return CampaignSpec.from_dict(source)
    path = Path(source)
    if path.exists():
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".json":
            return CampaignSpec.from_json(text)
        return CampaignSpec.from_toml(text)
    packaged = _packaged_specs().get(str(source))
    if packaged is not None:
        return CampaignSpec.from_toml(
            packaged.read_text(encoding="utf-8")
        )
    raise ConfigurationError(
        f"no campaign spec at path {source!r} and no packaged campaign "
        f"of that name (packaged: {list_campaigns()})"
    )
