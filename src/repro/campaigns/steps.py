"""Registered campaign steps and the context they execute under.

A *step* is a named, importable function ``step(ctx) -> value`` that a
campaign stage binds to by string.  The registry keeps campaign specs
declarative (a TOML file can only name steps, never embed code) and
keeps stages picklable — pool backends ship ``(step name, context)``
across process boundaries and re-resolve the callable on the far side.

Built-in steps cover the repo's experiment vocabulary:

``scenario.run``
    Drive one scenario preset (plus dotted-path overrides) and return
    its flat metrics dict.
``scenario.sweep``
    Run a full scenario parameter grid through the PR-2/PR-6 sweep
    engine — with its own point-level cache and journal under the
    campaign's state directory, so resuming a half-done sweep stage
    re-enters it at point granularity.
``workload.summary``
    Summarise a preset's facility shape (pure, no simulation).
``sweep.aggregate``
    Reduce an upstream sweep stage's rows to per-metric statistics.
``strategy.compare``
    The E3 core: one hybrid app under co-scheduling vs workflow
    execution, returning per-strategy turnaround/efficiency metrics.
``report.render``
    Fold every upstream value into a deterministic campaign report.

Step values must be picklable and JSON-canonicalisable — they are
persisted per stage and digested for the byte-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError

#: Step signature: one positional :class:`StageContext`.
StepFn = Callable[["StageContext"], Any]


@dataclass
class StageContext:
    """Everything a step sees when its stage executes.

    ``upstream`` maps each dependency stage's name to its value, in
    the spec's ``after`` order.  ``seed`` is the stage's derived seed
    (a pure function of campaign seed + stage name).  ``state_dir`` is
    a campaign-private directory the step may use for its own durable
    state — the sweep step keeps its point cache and journal there.
    """

    stage: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    upstream: Dict[str, Any] = field(default_factory=dict)
    workers: int = 1
    state_dir: Optional[Path] = None
    code_version: str = ""

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def require(self, key: str) -> Any:
        if key not in self.params:
            raise ConfigurationError(
                f"stage {self.stage!r}: required param {key!r} missing"
            )
        return self.params[key]

    def sole_upstream(self) -> Any:
        """The single dependency's value (errors if not exactly one)."""
        if len(self.upstream) != 1:
            raise ConfigurationError(
                f"stage {self.stage!r} expects exactly one dependency, "
                f"has {sorted(self.upstream)}"
            )
        return next(iter(self.upstream.values()))


class StepRegistry:
    """Name -> step function, with helpful unknown-name errors.

    >>> registry = StepRegistry()
    >>> @registry.register("demo.double")
    ... def _double(ctx):
    ...     return 2 * ctx.param("x", 0)
    >>> registry.get("demo.double")(StageContext(stage="s",
    ...                                          params={"x": 21}))
    42
    """

    def __init__(self) -> None:
        self._steps: Dict[str, StepFn] = {}

    def register(self, name: str) -> Callable[[StepFn], StepFn]:
        def decorator(fn: StepFn) -> StepFn:
            if name in self._steps:
                raise ConfigurationError(
                    f"step {name!r} is already registered"
                )
            self._steps[name] = fn
            return fn

        return decorator

    def get(self, name: str) -> StepFn:
        try:
            return self._steps[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown step {name!r} (registered: {self.names()})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._steps)

    def __contains__(self, name: str) -> bool:
        return name in self._steps


#: The process-wide registry campaign specs resolve against.
STEPS = StepRegistry()


def register_step(name: str) -> Callable[[StepFn], StepFn]:
    """Register a step in the global registry (decorator)."""
    return STEPS.register(name)


def resolve_step(name: str) -> StepFn:
    """Look ``name`` up in the global registry."""
    return STEPS.get(name)


# -- built-in steps ----------------------------------------------------------


@register_step("scenario.run")
def _scenario_run(ctx: StageContext) -> Dict[str, Any]:
    """Drive one scenario and return its flat metrics dict.

    Params: ``preset`` (or inline ``scenario`` dict), optional
    ``run_horizon``, plus any dotted-path overrides
    (``"topology.classical_nodes"``).  The stage seed drives the
    scenario unless ``params`` pins its own ``seed``.
    """
    from repro.scenarios.build import run_scenario
    from repro.scenarios.sweeps import HORIZON_KEY, point_scenario

    params = dict(ctx.params)
    seed = params.pop("seed", ctx.seed)
    horizon = params.get(HORIZON_KEY)
    spec = point_scenario(params)
    return run_scenario(spec, seed=seed, horizon=horizon)


@register_step("scenario.sweep")
def _scenario_sweep(ctx: StageContext) -> Dict[str, Any]:
    """Run a scenario grid; resumable at point granularity.

    Params: ``preset``, ``axes`` (dotted path -> list of values),
    optional ``replications``, ``run_horizon``, ``retries``,
    ``point_timeout_seconds``.  The sweep's cache and journal live
    under the campaign state directory, so a campaign resumed through
    a half-done sweep stage re-executes only the missing points.

    Returns ``{"rows": [{**params, **metrics}, ...], "ok": n,
    "failed": n}`` — plain data, safe to digest and pickle.
    """
    from repro.experiments.resilience import FailurePolicy
    from repro.experiments.sweep import SweepCache
    from repro.scenarios.sweeps import (
        run_scenario_sweep,
        scenario_sweep_spec,
    )

    axes = {
        str(key): list(values)
        for key, values in ctx.require("axes").items()
    }
    spec = scenario_sweep_spec(
        ctx.require("preset"),
        axes,
        experiment_id=ctx.param(
            "experiment_id", f"campaign:{ctx.stage}"
        ),
        base_seed=int(ctx.param("seed", ctx.seed)),
        replications=int(ctx.param("replications", 1)),
        run_horizon=ctx.param("run_horizon"),
    )
    cache = journal = None
    if ctx.state_dir is not None:
        sweep_dir = Path(ctx.state_dir) / "sweeps" / ctx.stage
        cache = SweepCache(sweep_dir, code_version=ctx.code_version)
        journal = sweep_dir
    policy = FailurePolicy(
        max_attempts=int(ctx.param("retries", 0)) + 1,
        timeout_seconds=ctx.param("point_timeout_seconds"),
        on_error="collect",
    )
    result = run_scenario_sweep(
        spec,
        workers=ctx.workers,
        cache=cache,
        policy=policy,
        journal=journal,
        resume=True,
    )
    rows = []
    for point, value in zip(result.points, result.values):
        row = dict(point.params)
        row.pop("scenario", None)
        if value is not None:
            row.update(value)
        rows.append(row)
    return {
        "rows": rows,
        "ok": result.ok_count,
        "failed": result.failure_count,
    }


@register_step("workload.summary")
def _workload_summary(ctx: StageContext) -> Dict[str, Any]:
    """Summarise a preset's facility shape (no simulation).

    Params: ``preset``.  Pure function of the scenario registry —
    useful as a cheap root stage that downstream reports embed.
    """
    from repro.scenarios.registry import get_scenario

    spec = get_scenario(ctx.require("preset"))
    fleet = spec.fleet
    return {
        "scenario": spec.name,
        "classical_nodes": spec.topology.classical_nodes,
        "technology": fleet.technology,
        "device_groups": len(fleet.devices),
        "background_rho": spec.workload.background_rho,
        "horizon": spec.workload.horizon,
        "seed": spec.seed,
    }


@register_step("sweep.aggregate")
def _sweep_aggregate(ctx: StageContext) -> Dict[str, Any]:
    """Reduce an upstream sweep's rows to per-metric statistics.

    Params: ``metrics`` (list of row keys; defaults to every numeric,
    non-axis key), optional ``source`` naming which upstream stage to
    read (defaults to the sole dependency).
    """
    source = ctx.param("source")
    sweep = (
        ctx.upstream[source]
        if source is not None
        else ctx.sole_upstream()
    )
    rows = sweep["rows"]
    wanted = ctx.param("metrics")
    stats: Dict[str, Dict[str, float]] = {}
    for row in rows:
        for key, value in row.items():
            if wanted is not None and key not in wanted:
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            entry = stats.setdefault(
                key, {"count": 0, "total": 0.0, "min": value, "max": value}
            )
            entry["count"] += 1
            entry["total"] += value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
    aggregated = {
        key: {
            "count": entry["count"],
            "mean": entry["total"] / entry["count"],
            "min": entry["min"],
            "max": entry["max"],
        }
        for key, entry in sorted(stats.items())
    }
    return {
        "rows": len(rows),
        "ok": sweep.get("ok", len(rows)),
        "failed": sweep.get("failed", 0),
        "metrics": aggregated,
    }


@register_step("strategy.compare")
def _strategy_compare(ctx: StageContext) -> Dict[str, Any]:
    """E3 core: one app under co-scheduling vs workflow execution.

    Params: ``technology`` (default superconducting), ``iterations``,
    ``phase_seconds``, ``classical_nodes``, ``background_rho``,
    ``horizon``, ``submit_at``.
    """
    from repro.experiments.common import (
        campaign_scenario,
        run_campaign,
        standard_hybrid_app,
    )
    from repro.quantum.technology import TECHNOLOGIES
    from repro.strategies.coschedule import CoScheduleStrategy
    from repro.strategies.workflow import WorkflowStrategy

    name = ctx.param("technology", "superconducting")
    try:
        technology = TECHNOLOGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"stage {ctx.stage!r}: unknown technology {name!r} "
            f"(known: {sorted(TECHNOLOGIES)})"
        ) from None
    iterations = int(ctx.param("iterations", 5))
    app = standard_hybrid_app(
        technology,
        iterations=iterations,
        classical_phase_seconds=float(ctx.param("phase_seconds", 300.0)),
        classical_nodes=int(ctx.param("app_nodes", 8)),
    )
    scenario = campaign_scenario(
        technology,
        classical_nodes=int(ctx.param("classical_nodes", 32)),
        background_rho=float(ctx.param("background_rho", 0.0)),
        background_horizon=float(ctx.param("horizon", 0.0)),
        seed=int(ctx.param("seed", ctx.seed)),
        name=f"campaign-{ctx.stage}",
    )
    submit_at = float(ctx.param("submit_at", 0.0))
    comparison: Dict[str, Any] = {}
    for strategy in (CoScheduleStrategy(), WorkflowStrategy()):
        records, _env = run_campaign(
            strategy,
            [app],
            scenario=scenario,
            submit_times=[submit_at],
        )
        record = records[0]
        comparison[strategy.name] = {
            "turnaround": record.turnaround,
            "queued_pieces": len(record.queue_waits),
            "total_queue_wait": record.total_queue_wait,
            "classical_efficiency": record.classical_efficiency,
            "qpu_efficiency": record.qpu_efficiency,
        }
    comparison["ideal_makespan"] = app.ideal_makespan(technology)
    return comparison


@register_step("report.render")
def _report_render(ctx: StageContext) -> Dict[str, Any]:
    """Fold upstream stage values into one deterministic report.

    Params: optional ``title``.  The report carries each upstream
    value verbatim plus a short digest per stage, so the final
    campaign artefact is self-contained and byte-stable.
    """
    from repro.experiments.sweep import canonical_bytes

    import hashlib

    sections = {}
    for stage_name in sorted(ctx.upstream):
        value = ctx.upstream[stage_name]
        sections[stage_name] = {
            "digest": hashlib.sha256(
                canonical_bytes(value)
            ).hexdigest()[:16],
            "value": value,
        }
    return {
        "title": ctx.param("title", "campaign report"),
        "stages": sections,
    }
