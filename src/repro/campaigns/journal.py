"""Stage-granular campaign journal, layered on the JSONL machinery.

The campaign engine writes one :class:`StageOutcome` line per terminal
stage — flushed and fsync'd, so a SIGKILL between stages loses nothing.
On ``--resume`` the engine replays journaled outcomes instead of
re-executing: a completed stage's value comes back from its result
pickle, a permanently-failed stage replays as a failure (cone-skipped
under ``on_error="collect"``).  *Skipped* stages are deliberately never
journaled — a resume that recovers their failed ancestor must be free
to run them.

Locking and compaction are inherited from
:class:`~repro.experiments.resilience.JsonlJournal`: a second live
process on the same journal raises
:class:`~repro.errors.JournalLockedError`, and ``close()`` compacts
superseded stage lines away.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.resilience import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMED_OUT,
    JsonlJournal,
)

#: Stage-only status: an ancestor failed, so the stage never ran.
STATUS_SKIPPED = "skipped"

#: Every status a StageOutcome may carry.  ``skipped`` appears in
#: results but is never journaled (see module docstring).
STAGE_STATUSES = (
    STATUS_OK,
    STATUS_FAILED,
    STATUS_TIMED_OUT,
    STATUS_CRASHED,
    STATUS_SKIPPED,
)


@dataclass
class StageOutcome:
    """The terminal record of one campaign stage.

    ``result_digest`` is ``sha256(canonical_bytes(value))[:16]`` — the
    engine uses it on resume to verify the persisted result pickle
    still matches what the journal promised, and the crash-resume
    suite uses it to assert byte-identity without shipping values
    around.  ``resumed`` marks an outcome replayed from the journal
    rather than executed this run.
    """

    stage: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempt_seconds: List[float] = field(default_factory=list)
    result_digest: Optional[str] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def describe(self) -> str:
        """One-line human summary (used by CLI status tables)."""
        text = (
            f"stage {self.stage!r}: {self.status} after "
            f"{self.attempts} attempt(s)"
        )
        if self.error:
            text += f" — {self.error}"
        return text

    def to_json_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "StageOutcome":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def campaign_digest(name: str, seed: int, code_version: str) -> str:
    """The identity a campaign journal (and result dir) is bound to.

    Changing the campaign's name, seed, or the code version starts a
    fresh journal rather than replaying stale stage outcomes.
    """
    return hashlib.sha256(
        f"{name}\n{seed}\n{code_version}".encode("utf-8")
    ).hexdigest()[:12]


class CampaignJournal(JsonlJournal):
    """Append-only JSONL journal of terminal stage outcomes."""

    @classmethod
    def for_campaign(
        cls,
        directory: os.PathLike,
        name: str,
        seed: int,
        code_version: str,
    ) -> "CampaignJournal":
        digest = campaign_digest(name, seed, code_version)
        slug = "".join(
            ch if (ch.isalnum() or ch in "-_") else "-" for ch in name
        )
        return cls(
            Path(directory) / f"{slug}-{digest}.campaign.jsonl"
        )

    def _encode_record(self, record: StageOutcome) -> Dict[str, Any]:
        return record.to_json_dict()

    def _decode_record(
        self, data: Mapping[str, Any]
    ) -> Optional[StageOutcome]:
        outcome = StageOutcome.from_json_dict(data)
        if outcome.status not in STAGE_STATUSES:
            return None
        if outcome.status == STATUS_SKIPPED:
            # Skips are a per-run decision, not durable state.
            return None
        return outcome

    def _record_key(self, record: StageOutcome) -> str:
        return record.stage
