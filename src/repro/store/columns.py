"""Columnar metric encoding: scalar-dict codec + npz shard files.

The pickle :class:`~repro.experiments.sweep.SweepCache` serialises one
whole metric dict per point; reading one metric across a 10^4-point
grid means 10^4 unpickles.  The store keeps point values in two
representations instead:

- **Inline payloads** (``points.payload``): canonical JSON whenever
  the value round-trips exactly (:func:`json_exact` — scalars,
  strings, lists, str-keyed dicts to any depth), pickle for anything
  else.  JSON keeps those values *exact* — Python's ``repr`` float
  formatting is shortest-roundtrip, ints are arbitrary precision,
  ``NaN``/``Infinity`` survive — so byte-identity against the pickle
  path holds.
- **Columnar shards** (``shards/*.npz``): after a sweep finalizes,
  eligible points move into npz shards holding three arrays per
  metric — ``k:<m>`` (uint8 kind per point), ``f8:<m>`` (float64),
  ``i8:<m>`` (int64, also carries bools) — indexed by position within
  the shard.  ``numpy.load`` reads zip members lazily, so fetching
  one metric column touches only that metric's arrays: no unpickling,
  no other metrics, no per-point objects.

Kind codes: ``0`` absent, ``1`` float, ``2`` int, ``3`` bool, ``4``
``None``.  Eligibility is per *metric*, not per point:
:func:`split_point` sends the scalar members of a str-keyed metric
dict to the columns and keeps the rest (strings, nested structures,
ints outside int64) inline as a small residual payload, so a stray
``fleet_policy: "easy"`` entry does not force the whole point — let
alone the whole sweep — back to pickles.  A value that is not a
str-keyed dict (or has no scalar members at all) stays fully inline;
the reader falls back transparently either way.

Shard files are written atomically (temp file + fsync +
``os.replace``) with :func:`~repro.store.db.crash_point` sites before,
inside and after the write, so the crash suite can prove a killed
writer never publishes a torn shard.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.store.db import crash_point

KIND_ABSENT = 0
KIND_FLOAT = 1
KIND_INT = 2
KIND_BOOL = 3
KIND_NONE = 4

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: ``points.kind`` values for inline payloads.
PAYLOAD_JSON = "json"
PAYLOAD_PICKLE = "pickle"
#: ``points.kind`` once the value lives in a shard.
PAYLOAD_COLUMN = "column"
#: Shard + inline residual for the non-scalar members.
PAYLOAD_COLUMN_JSON = "column-json"
PAYLOAD_COLUMN_PICKLE = "column-pickle"
#: Every ``points.kind`` whose scalars live in a shard.
COLUMN_KINDS = (PAYLOAD_COLUMN, PAYLOAD_COLUMN_JSON, PAYLOAD_COLUMN_PICKLE)


def scalar_kind(value: Any) -> int:
    """The shard kind code for one metric value (0 = not shardable)."""
    if value is None:
        return KIND_NONE
    if isinstance(value, bool):  # before int: bool is an int subclass
        return KIND_BOOL
    if isinstance(value, int):
        return KIND_INT if _INT64_MIN <= value <= _INT64_MAX else KIND_ABSENT
    if isinstance(value, float):
        return KIND_FLOAT
    return KIND_ABSENT


def is_scalar_dict(value: Any) -> bool:
    """True when ``value`` is a dict of str -> float/int/bool/None."""
    if type(value) is not dict:
        return False
    for key, item in value.items():
        if not isinstance(key, str):
            return False
        if item is None or isinstance(item, (bool, float, int)):
            continue
        return False
    return True


def is_column_eligible(value: Any) -> bool:
    """True when every metric of ``value`` fits the shard arrays
    (scalar dict whose ints all fit int64) — i.e. the point needs no
    residual payload at all."""
    if not is_scalar_dict(value):
        return False
    return all(
        scalar_kind(item) != KIND_ABSENT for item in value.values()
    )


def split_point(
    value: Any,
) -> Optional[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """``(scalars, residual)`` for a shard-eligible point, else ``None``.

    Eligible means a plain str-keyed dict with at least one scalar
    member.  Scalars go to the shard columns; everything else —
    strings, nested dicts/lists, ints outside int64 — is the residual
    that stays inline next to the point row.
    """
    if type(value) is not dict:
        return None
    scalars: Dict[str, Any] = {}
    residual: Dict[str, Any] = {}
    for key, item in value.items():
        if not isinstance(key, str):
            return None
        if scalar_kind(item) != KIND_ABSENT:
            scalars[key] = item
        else:
            residual[key] = item
    if not scalars:
        return None
    return scalars, residual


def json_exact(value: Any) -> bool:
    """True when ``json.dumps``/``loads`` round-trips ``value``
    *exactly*: scalars, strings, lists and str-keyed dicts, to any
    depth.  Tuples (would come back as lists), non-str dict keys
    (would come back as strings) and third-party numerics fail."""
    if value is None or value is True or value is False:
        return True
    if type(value) in (int, float, str):
        return True
    if type(value) is list:
        return all(json_exact(item) for item in value)
    if type(value) is dict:
        return all(
            type(key) is str and json_exact(item)
            for key, item in value.items()
        )
    return False


def encode_value(value: Any) -> Tuple[str, bytes]:
    """``(kind, payload)`` for one point value: JSON when exact, else
    pickle.  JSON round-trips floats exactly (shortest-repr) and ints
    at arbitrary precision; ``NaN``/``Infinity`` survive."""
    if json_exact(value):
        return PAYLOAD_JSON, json.dumps(value, sort_keys=True).encode("utf-8")
    return PAYLOAD_PICKLE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_value(kind: str, payload: bytes) -> Any:
    if kind == PAYLOAD_JSON:
        return json.loads(payload.decode("utf-8"))
    if kind == PAYLOAD_PICKLE:
        return pickle.loads(payload)
    raise ValueError(f"cannot decode inline payload of kind {kind!r}")


# -- shard building ----------------------------------------------------------


def build_shard_arrays(
    values: Sequence[Optional[Mapping[str, Any]]],
) -> Tuple[Dict[str, np.ndarray], List[str]]:
    """npz member arrays for one shard's point values, in order.

    ``values[i] is None`` marks a point that stays inline (not
    eligible); its kinds are all :data:`KIND_ABSENT` so the reader
    knows to fall back to the payload.  Returns ``(arrays, metrics)``.
    """
    count = len(values)
    metrics: List[str] = []
    seen = set()
    for value in values:
        if value is None:
            continue
        for metric in value:
            if metric not in seen:
                seen.add(metric)
                metrics.append(metric)
    metrics.sort()
    arrays: Dict[str, np.ndarray] = {}
    for metric in metrics:
        kinds = np.zeros(count, dtype=np.uint8)
        floats = np.full(count, np.nan, dtype=np.float64)
        ints = np.zeros(count, dtype=np.int64)
        for pos, value in enumerate(values):
            if value is None or metric not in value:
                continue
            item = value[metric]
            kind = scalar_kind(item)
            kinds[pos] = kind
            if kind == KIND_FLOAT:
                floats[pos] = item
            elif kind == KIND_INT:
                ints[pos] = item
            elif kind == KIND_BOOL:
                ints[pos] = int(item)
        arrays[f"k:{metric}"] = kinds
        arrays[f"f8:{metric}"] = floats
        arrays[f"i8:{metric}"] = ints
    return arrays, metrics


def write_shard(path: os.PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Atomically write one npz shard (tmp + fsync + ``os.replace``).

    Crash sites: ``shard-mid-write`` (half the bytes on disk, file
    not yet published), ``shard-tmp-written`` (fully written, not yet
    published), ``shard-renamed`` (published, but the transaction
    referencing it has not committed — an orphan for gc).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, **dict(arrays))
    data = buffer.getvalue()
    handle = tempfile.NamedTemporaryFile(
        "wb", dir=path.parent, suffix=".tmp", delete=False
    )
    try:
        with handle:
            half = len(data) // 2
            handle.write(data[:half])
            handle.flush()
            os.fsync(handle.fileno())
            crash_point("shard-mid-write")
            handle.write(data[half:])
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("shard-tmp-written")
        os.replace(handle.name, path)
        crash_point("shard-renamed")
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


# -- shard reading -----------------------------------------------------------


def open_shard(path: os.PathLike) -> "np.lib.npyio.NpzFile":
    """Open one shard for lazy member reads (raises on torn files)."""
    return np.load(path, allow_pickle=False)


def shard_metric_arrays(
    npz: "np.lib.npyio.NpzFile", metric: str
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """``(kinds, floats, ints)`` for one metric, or ``None`` if the
    shard never saw it.  Reads exactly three zip members."""
    key = f"k:{metric}"
    if key not in npz.files:
        return None
    return npz[key], npz[f"f8:{metric}"], npz[f"i8:{metric}"]


def point_from_arrays(
    arrays_by_metric: Mapping[
        str, Tuple[np.ndarray, np.ndarray, np.ndarray]
    ],
    pos: int,
) -> Dict[str, Any]:
    """Rebuild one point's metric dict from shard arrays (exact types)."""
    value: Dict[str, Any] = {}
    for metric, (kinds, floats, ints) in arrays_by_metric.items():
        kind = int(kinds[pos])
        if kind == KIND_ABSENT:
            continue
        if kind == KIND_FLOAT:
            value[metric] = float(floats[pos])
        elif kind == KIND_INT:
            value[metric] = int(ints[pos])
        elif kind == KIND_BOOL:
            value[metric] = bool(ints[pos])
        else:
            value[metric] = None
    return value


@dataclass
class MetricColumn:
    """One metric across every point of a finalized sweep, in spec
    point order.

    ``values`` is float64 (ints and bools cast; ``NaN`` where the
    metric is absent, ``None``, or the point was not shard-eligible);
    ``kinds`` preserves the exact per-point type for callers that
    need it; ``ints`` carries the unlossy int64/bool channel.
    """

    metric: str
    values: np.ndarray
    kinds: np.ndarray
    ints: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    @property
    def present(self) -> np.ndarray:
        return self.kinds != KIND_ABSENT

    def tolist(self) -> List[Any]:
        """Exact Python values (``None`` where absent)."""
        out: List[Any] = []
        for pos, kind in enumerate(self.kinds):
            kind = int(kind)
            if kind == KIND_FLOAT:
                out.append(float(self.values[pos]))
            elif kind == KIND_INT:
                out.append(int(self.ints[pos]))
            elif kind == KIND_BOOL:
                out.append(bool(self.ints[pos]))
            else:
                out.append(None)
        return out


def assemble_column(
    metric: str,
    blocks: Sequence[
        Tuple[int, int, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]]
    ],
    n_points: int,
) -> MetricColumn:
    """Stitch per-shard ``(start, count, arrays)`` blocks into one
    :class:`MetricColumn` covering ``n_points`` grid positions."""
    kinds = np.zeros(n_points, dtype=np.uint8)
    values = np.full(n_points, np.nan, dtype=np.float64)
    ints = np.zeros(n_points, dtype=np.int64)
    for start, count, arrays in blocks:
        if arrays is None:
            continue
        shard_kinds, shard_floats, shard_ints = arrays
        stop = start + count
        kinds[start:stop] = shard_kinds
        ints[start:stop] = shard_ints
        block = shard_floats.copy()
        int_mask = shard_kinds == KIND_INT
        bool_mask = shard_kinds == KIND_BOOL
        block[int_mask] = shard_ints[int_mask].astype(np.float64)
        block[bool_mask] = shard_ints[bool_mask].astype(np.float64)
        values[start:stop] = block
    return MetricColumn(metric=metric, values=values, kinds=kinds, ints=ints)
