"""Store-backed sweep cache and run journal.

Drop-in stand-ins for the pickle :class:`~repro.experiments.sweep.
SweepCache` and JSONL :class:`~repro.experiments.resilience.
RunJournal`, speaking the exact same interfaces ``run_sweep``
consumes — so every existing experiment, scenario sweep and campaign
step becomes store-backed the moment its cache directory holds a
``store.sqlite3`` (see :func:`~repro.experiments.sweep.sweep_cache`).

Both adapters share one :class:`~repro.store.api.ResultStore` (one
SQLite connection, one writer flock): ``run_sweep`` converting a
directory journal asks the cache for a journal first
(:meth:`StoreSweepCache.journal_for`), which prevents the
same-process double-flock a second independent store handle would
trip over.

Byte-identity with the pickle path is pinned by
``tests/store/test_equivalence.py``: same ``SweepResult.values``,
same ``outcomes``, same ``canonical_bytes``, serial vs parallel,
warm vs cold, resume after a kill.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.experiments.resilience import PointOutcome, RunJournal
from repro.store.api import ResultStore
from repro.store.db import STORE_DB_FILENAME


class StoreSweepCache:
    """The ``SweepCache`` duck interface, backed by a result store.

    Each ``store()`` commits one WAL transaction — durable against
    SIGKILL — and each ``load()`` reads committed state only, with
    the same quarantine-and-miss contract the pickle cache has for
    corrupt entries.
    """

    def __init__(self, store: ResultStore) -> None:
        self.result_store = store
        self.directory = store.directory
        self.code_version = store.code_version

    def load(
        self, spec: Any, runner_name: str, point: Any
    ) -> Tuple[bool, Any]:
        return self.result_store.load_point(spec, runner_name, point)

    def store(
        self, spec: Any, runner_name: str, point: Any, value: Any
    ) -> None:
        self.result_store.store_point(spec, runner_name, point, value)

    def journal_for(
        self, directory: os.PathLike, spec: Any, runner_name: str
    ) -> Optional["StoreRunJournal"]:
        """A journal sharing this cache's store, when ``directory`` is
        the store's own directory (else ``None`` — caller falls back)."""
        try:
            same = Path(directory).resolve() == self.directory.resolve()
        except OSError:  # pragma: no cover - unresolvable path
            same = False
        if not same:
            return None
        return self.result_store.run_journal(spec.experiment_id, runner_name)


class StoreRunJournal(RunJournal):
    """The ``RunJournal`` contract against the store's outcomes table.

    Subclasses :class:`RunJournal` so ``run_sweep``'s
    ``isinstance``-gated journal handling works unchanged; every
    inherited file operation is overridden to hit SQLite instead.
    ``acquire()`` takes the *store's* writer flock (shared with the
    cache), so a second live writer fails fast with
    :class:`~repro.errors.StoreLockedError` — a subclass of the
    :class:`~repro.errors.JournalLockedError` callers already catch.
    """

    def __init__(
        self, store: ResultStore, experiment_id: str, runner_name: str
    ) -> None:
        super().__init__(store.directory / STORE_DB_FILENAME)
        self.result_store = store
        self.experiment_id = experiment_id
        self.runner_name = runner_name

    # -- locking (store-wide, not per-file) ----------------------------------

    def acquire(self) -> None:
        self.result_store.acquire()

    def _release_lock(self) -> None:  # pragma: no cover - via close()
        self.result_store.release()

    # -- journal operations --------------------------------------------------

    def load(self) -> Dict[str, PointOutcome]:
        return self.result_store.load_outcomes(
            self.experiment_id, self.runner_name
        )

    def record(self, record: PointOutcome) -> None:
        self.result_store.record_outcome(
            self.experiment_id, self.runner_name, record
        )

    def reset(self) -> None:
        self.result_store.clear_outcomes(
            self.experiment_id, self.runner_name
        )

    def compact(self) -> int:
        # Upserts keyed by point never accumulate superseded rows.
        return 0

    def close(self) -> None:
        """Release the writer lock; the store connection stays open
        (the cache sharing this store may still be reading)."""
        self.result_store.release()
