"""SQLite connection management for the result store.

:class:`StoreDB` owns exactly one database file (``store.sqlite3`` in
the store directory) and provides the durability spine every higher
layer builds on:

- **WAL mode, ``synchronous=NORMAL``** — a committed transaction
  survives a SIGKILL of the writer (the OS page cache persists across
  process death; only a kernel panic / power cut could lose the tail,
  which is out of scope for a local experiment store), while readers
  get snapshot isolation against the live writer.
- **Exclusive writer flock** (``store.sqlite3.lock``) — a second
  writer process raises :class:`~repro.errors.StoreLockedError`
  instead of interleaving; the kernel drops the lock when its holder
  dies, so crashed writers never leave stale locks.  The lock is
  fork-safe via the same guard the JSONL journals use: a forked child
  drops its inherited handles so a pool worker outliving the
  orchestrator cannot pin the lock.
- **Validation with quarantine** — a garbage database file or an
  unreadable schema version is renamed to ``*.corrupt`` (plus its
  ``-wal``/``-shm`` siblings) and :class:`~repro.errors.
  StoreCorruptError` raised; reopening starts clean.  A *newer*
  schema version raises :class:`~repro.errors.StoreSchemaError`
  without touching the data.  An older version is migrated in one
  transaction on open.

The module also hosts :func:`crash_point`, the fault-injection hook
the crash-safety suite drives: when ``REPRO_STORE_FAULT`` names a
site (optionally ``site:N`` for the N-th hit), reaching that site
hard-exits the process with :data:`~repro.experiments.resilience.
CHAOS_EXIT_CODE` — a SIGKILL-equivalent crash at a chosen commit
boundary.
"""

from __future__ import annotations

import contextlib
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.errors import (
    StoreCorruptError,
    StoreLockedError,
    StoreSchemaError,
)
from repro.experiments.resilience import (
    CHAOS_EXIT_CODE,
    _register_fork_guard,
)
from repro.store import schema as store_schema

try:  # POSIX advisory locks die with their holder (SIGKILL-safe).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Database file name inside a store directory — its presence is how
#: ``sweep_cache``/``run_sweep`` detect a store-backed directory.
STORE_DB_FILENAME = "store.sqlite3"

#: Environment variable naming a crash site (``site`` or ``site:N``).
FAULT_ENV = "REPRO_STORE_FAULT"

_fault_hits: Dict[str, int] = {}


def crash_point(site: str) -> None:
    """Hard-exit at ``site`` when ``REPRO_STORE_FAULT`` selects it.

    ``os._exit`` (no cleanup, no atexit, no flushes) is the closest
    in-process stand-in for SIGKILL; the crash-safety suite asserts
    that a store killed at *any* site reopens clean.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    name, _, count = spec.partition(":")
    if name != site:
        return
    _fault_hits[site] = _fault_hits.get(site, 0) + 1
    if _fault_hits[site] == int(count or 1):
        os._exit(CHAOS_EXIT_CODE)


class StoreDB:
    """One SQLite database with WAL durability and a writer flock.

    Connections are lazy: constructing a :class:`StoreDB` touches
    nothing on disk until :meth:`connection` (which creates and
    validates the database) or :meth:`acquire_writer` (which takes
    the lock) is called.
    """

    def __init__(
        self, directory: os.PathLike, shared_lock: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.shared_lock = shared_lock
        self._conn: Optional[sqlite3.Connection] = None
        self._lock_handle = None

    # -- paths ---------------------------------------------------------------

    @property
    def db_path(self) -> Path:
        return self.directory / STORE_DB_FILENAME

    @property
    def lock_path(self) -> Path:
        return self.directory / (STORE_DB_FILENAME + ".lock")

    @property
    def shards_dir(self) -> Path:
        return self.directory / "shards"

    # -- fork safety ---------------------------------------------------------

    def _drop_inherited_handles(self) -> None:
        """Forked-child half of the lock contract.

        Closing the child's inherited lock handle keeps the flock
        owned by exactly the parent (the lock lives on the shared
        open file description, which survives until *every* holder
        closes it — so the parent keeps it, but a child that outlives
        a SIGKILL'd parent releases it).  The SQLite connection is
        *not* closed in the child — closing could roll back the
        parent's in-flight transaction through the shared file
        handle — it is simply forgotten; the child reconnects if it
        ever needs the store.
        """
        handle, self._lock_handle = self._lock_handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass
        self._conn = None

    # -- writer lock ---------------------------------------------------------

    @property
    def holds_writer_lock(self) -> bool:
        return self._lock_handle is not None

    def acquire_writer(self) -> None:
        """Take the writer lock (idempotent).

        The default is an *exclusive* flock: exactly one writer per
        store, raising :class:`~repro.errors.StoreLockedError` when
        another live process holds any lock on it.  A store opened
        with ``shared_lock=True`` (the service worker pool and HTTP
        server) takes a *shared* flock instead: any number of shared
        holders coexist — per-submission mutual exclusion comes from
        the lease protocol, and SQLite's own WAL locking serialises
        their transactions — while exclusive single-writer tools and
        the shared pool still exclude each other both ways.  Degrades
        to no locking where ``fcntl`` is unavailable.
        """
        if self._lock_handle is not None or fcntl is None:
            return
        _register_fork_guard(self)
        self.directory.mkdir(parents=True, exist_ok=True)
        mode = fcntl.LOCK_SH if self.shared_lock else fcntl.LOCK_EX
        handle = open(self.lock_path, "a+")
        try:
            fcntl.flock(handle.fileno(), mode | fcntl.LOCK_NB)
        except OSError:
            pid = "unknown"
            try:
                handle.seek(0)
                pid = handle.read(32).strip() or "unknown"
            except OSError:  # pragma: no cover - unreadable lock file
                pass
            handle.close()
            wanted = "shared" if self.shared_lock else "exclusive"
            raise StoreLockedError(
                f"store {self.directory} is locked by another live "
                f"process (pid {pid}) against a {wanted} writer; "
                "concurrent writers outside the lease protocol would "
                "corrupt resume state — wait for it or use a "
                "different store directory"
            ) from None
        if not self.shared_lock:
            # Shared holders skip the pid stamp: truncating under a
            # shared lock would race with (and clobber) their peers.
            handle.truncate(0)
            handle.write(f"{os.getpid()}\n")
            handle.flush()
        self._lock_handle = handle

    def release_writer(self) -> None:
        if self._lock_handle is not None:
            try:
                self._lock_handle.close()
            except OSError:  # pragma: no cover
                pass
            self._lock_handle = None

    # -- connection ----------------------------------------------------------

    def connection(self) -> sqlite3.Connection:
        """The validated connection (created/migrated on first use)."""
        if self._conn is None:
            self._conn = self._open()
        return self._conn

    def _open(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        fresh = not self.db_path.exists()
        # check_same_thread=False: the HTTP service serves requests
        # from handler threads behind a mutex — the store object is
        # still single-threaded by contract, just not pinned to the
        # thread that happened to open it.
        conn = sqlite3.connect(
            self.db_path, timeout=30.0, check_same_thread=False
        )
        conn.isolation_level = None  # explicit BEGIN/COMMIT only
        try:
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA foreign_keys=ON")
                conn.execute("PRAGMA busy_timeout=30000")
                if fresh:
                    store_schema.create_schema(conn)
                    return conn
                version = store_schema.read_schema_version(conn)
            except (sqlite3.Error, ValueError) as exc:
                # A garbage file can fail as early as the first PRAGMA
                # ("file is not a database"), not just at the version
                # read — quarantine either way.  A brand-new file has
                # nothing worth quarantining.
                if fresh:
                    raise
                conn.close()
                quarantined = self.quarantine_database()
                raise StoreCorruptError(
                    f"{self.db_path} is not a readable result store "
                    f"({exc}); quarantined to {quarantined} — reopen "
                    "to start a fresh store"
                ) from exc
            if version > store_schema.SCHEMA_VERSION:
                conn.close()
                raise StoreSchemaError(
                    f"{self.db_path} has schema version {version}, "
                    f"newer than this library understands "
                    f"({store_schema.SCHEMA_VERSION}); upgrade the "
                    "library — the store was left untouched"
                )
            if version < store_schema.SCHEMA_VERSION:
                store_schema.migrate(conn, version)
            return conn
        except BaseException:
            with contextlib.suppress(sqlite3.Error):
                conn.close()
            raise

    @contextlib.contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """``BEGIN IMMEDIATE`` ... ``COMMIT`` (rollback on error).

        IMMEDIATE takes the SQLite write lock up front, so a
        transaction never fails at COMMIT after doing half its reads.
        """
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            with contextlib.suppress(sqlite3.Error):
                conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    # -- quarantine / verification -------------------------------------------

    def quarantine_database(self) -> Path:
        """Rename the database (and WAL/SHM siblings) to ``*.corrupt``."""
        if self._conn is not None:
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
            self._conn = None
        stamp = f"{int(time.time() * 1000):x}"
        quarantined = self.db_path.with_name(
            self.db_path.name + f".{stamp}.corrupt"
        )
        os.replace(self.db_path, quarantined)
        for suffix in ("-wal", "-shm"):
            sibling = self.db_path.with_name(self.db_path.name + suffix)
            with contextlib.suppress(OSError):
                os.replace(
                    sibling, quarantined.with_name(quarantined.name + suffix)
                )
        return quarantined

    def verify(self) -> None:
        """Raise :class:`~repro.errors.StoreCorruptError` unless the
        database passes SQLite's integrity check."""
        row = self.connection().execute(
            "PRAGMA integrity_check"
        ).fetchone()
        if row is None or row[0] != "ok":
            raise StoreCorruptError(
                f"{self.db_path} failed integrity_check: "
                f"{row[0] if row else 'no result'}"
            )

    def close(self) -> None:
        if self._conn is not None:
            with contextlib.suppress(sqlite3.Error):
                self._conn.close()
            self._conn = None
        self.release_writer()

    @staticmethod
    def now() -> float:
        return time.time()
