"""``repro.store`` — durable campaign/result store.

SQLite metadata (WAL mode, schema-versioned, migrated on open) plus a
columnar npz metric backend, behind the same interfaces the pickle
cache and JSONL journals speak.  Start with :class:`ResultStore`:

>>> import tempfile
>>> from repro.store import ResultStore
>>> from repro.experiments.sweep import SweepSpec, run_sweep, runner_name
>>> tmp = tempfile.TemporaryDirectory()
>>> store = ResultStore(tmp.name, code_version="docs")
>>> spec = SweepSpec("doc-grid", axes={"x": [1, 2, 3]})
>>> def double(params, seed):
...     return {"y": params["x"] * 2.0}
>>> name = runner_name(double)
>>> result = run_sweep(spec, double, workers=1,
...                    cache=store.sweep_cache(),
...                    journal=store.run_journal("doc-grid", name))
>>> _ = store.finalize_sweep(spec, name)
>>> store.read_column(spec, name, "y").values.tolist()
[2.0, 4.0, 6.0]
>>> store.close(); tmp.cleanup()

See ``docs/store.md`` for the schema, the durability guarantees and
the gc/retention story.
"""

from repro.store.api import (
    DEFAULT_SHARD_POINTS,
    ResultStore,
    spec_digest,
)
from repro.store.cache import StoreRunJournal, StoreSweepCache
from repro.store.campaign import StoreCampaignJournal
from repro.store.columns import MetricColumn
from repro.store.db import FAULT_ENV, STORE_DB_FILENAME, StoreDB
from repro.store.schema import SCHEMA_VERSION

__all__ = [
    "DEFAULT_SHARD_POINTS",
    "FAULT_ENV",
    "MetricColumn",
    "ResultStore",
    "SCHEMA_VERSION",
    "STORE_DB_FILENAME",
    "StoreCampaignJournal",
    "StoreDB",
    "StoreRunJournal",
    "StoreSweepCache",
    "spec_digest",
]
