"""The result store facade: point values, outcomes, campaigns,
submissions, columns, gc.

:class:`ResultStore` is the one object every consumer talks to:

- ``run_sweep`` talks to it through :class:`~repro.store.cache.
  StoreSweepCache` / :class:`~repro.store.cache.StoreRunJournal`
  (same duck interfaces as the pickle cache and JSONL journal);
- ``CampaignEngine`` talks to it through :class:`~repro.store.
  campaign.StoreCampaignJournal` plus :meth:`save_stage_value` /
  :meth:`load_stage_value`;
- the CLI ``store submit|status|results|gc`` verbs call
  :meth:`submit`, :meth:`run_submission`, :meth:`status`,
  :meth:`results_rows` and :meth:`gc` directly.

Durability contract (proven by ``tests/store/test_crash.py``): every
point value and outcome is committed in its own WAL transaction, so a
SIGKILL at *any* :func:`~repro.store.db.crash_point` site loses at
most the uncommitted record; a reopened store never sees a torn row,
and resume re-executes exactly the points whose commits never landed
(zero of the stored ones).  Columnar shard files are published with
an atomic rename *before* the transaction that references them — a
crash leaves an orphan file for :meth:`gc`, never a committed row
pointing at a torn shard.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import sqlite3
import zipfile
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    LeaseError,
    StoreCorruptError,
    StoreError,
    UnknownSubmissionError,
)
from repro.experiments.resilience import PointOutcome, STATUSES
from repro.experiments.sweep import (
    SweepPoint,
    SweepSpec,
    _default_code_version,
    canonical_bytes,
    canonical_params,
)
from repro.store import columns as col
from repro.store.db import StoreDB, crash_point

#: Points per columnar shard file (a 10^4-point grid → 5 shards).
DEFAULT_SHARD_POINTS = 2048

#: Submission lifecycle states.
SUBMISSION_STATES = ("pending", "running", "done", "failed")

#: Default lease duration for worker claims; a worker heartbeats at a
#: fraction of this, so a dead worker's submission becomes claimable
#: again after at most one lease window.
DEFAULT_LEASE_SECONDS = 60.0

#: Default cap on claims per submission: a submission whose worker
#: dies this many times is marked ``failed`` instead of crash-looping
#: the pool forever.
DEFAULT_MAX_CLAIMS = 5


def spec_digest(spec: SweepSpec) -> str:
    """Stable identity of a sweep grid (axes, constants, seeds)."""
    return hashlib.sha256(canonical_bytes(spec.to_dict())).hexdigest()[:16]


def _point_store_key(point: SweepPoint) -> str:
    """The per-point residual of the pickle cache key — canonical
    params, replication and seed (identity columns carry the rest)."""
    return f"{point.key()}:seed{point.seed}"


class ResultStore:
    """A durable store of sweep results, outcomes and campaign state.

    One directory holds everything: ``store.sqlite3`` (metadata +
    inline payloads, WAL mode), ``shards/`` (columnar npz metric
    shards) and the writer lock.  Constructing the object is lazy;
    :meth:`open` (or any operation) creates the database.

    ``stats`` counts decode work (``unpickle``, ``json_decode``,
    ``column_point``, ``column_read``) so tests and benchmarks can
    assert the column path never unpickles per-point dicts.
    """

    def __init__(
        self,
        directory: os.PathLike,
        code_version: Optional[str] = None,
        shared_writer: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.db = StoreDB(self.directory, shared_lock=shared_writer)
        self.code_version = code_version or _default_code_version()
        self.stats: Counter = Counter()
        self._shard_arrays: Dict[int, Dict[str, Any]] = {}
        self._versions_seen: set = set()

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> "ResultStore":
        """Create/validate the database (migrating if older)."""
        self.db.connection()
        return self

    def acquire(self) -> None:
        """Take the exclusive writer lock (idempotent)."""
        self.db.acquire_writer()

    def release(self) -> None:
        self.db.release_writer()

    def close(self) -> None:
        self._shard_arrays.clear()
        self.db.close()

    def __enter__(self) -> "ResultStore":
        return self.open()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- consumers -----------------------------------------------------------

    def sweep_cache(self) -> "Any":
        from repro.store.cache import StoreSweepCache

        return StoreSweepCache(self)

    def run_journal(self, experiment_id: str, runner_name: str) -> "Any":
        from repro.store.cache import StoreRunJournal

        return StoreRunJournal(self, experiment_id, runner_name)

    def campaign_journal(
        self, name: str, seed: int, code_version: Optional[str] = None
    ) -> "Any":
        from repro.store.campaign import StoreCampaignJournal

        return StoreCampaignJournal(
            self, name, seed, code_version or self.code_version
        )

    # -- helpers -------------------------------------------------------------

    def _write(self) -> contextlib.AbstractContextManager:
        """A write transaction under the writer lock."""
        self.acquire()
        self._ensure_code_version()
        return self.db.transaction()

    def _ensure_code_version(self) -> None:
        if self.code_version in self._versions_seen:
            return
        with self.db.transaction() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO code_versions (version, first_seen)"
                " VALUES (?, ?)",
                (self.code_version, self.db.now()),
            )
        self._versions_seen.add(self.code_version)

    def _identity(self, experiment_id: str, runner: str) -> Tuple[str, str, str]:
        return (experiment_id, runner, self.code_version)

    # -- point values (the SweepCache contract) ------------------------------

    def store_point(
        self,
        spec: SweepSpec,
        runner_name: str,
        point: SweepPoint,
        value: Any,
    ) -> None:
        """Durably record one point value (own committed transaction)."""
        kind, payload = col.encode_value(value)
        now = self.db.now()
        with self._write() as conn:
            conn.execute(
                """
                INSERT INTO points (experiment_id, runner, code_version,
                    point_key, kind, payload, shard_id, shard_pos,
                    created_at, updated_at)
                VALUES (?, ?, ?, ?, ?, ?, NULL, NULL, ?, ?)
                ON CONFLICT (experiment_id, runner, code_version, point_key)
                DO UPDATE SET kind = excluded.kind,
                              payload = excluded.payload,
                              shard_id = NULL, shard_pos = NULL,
                              updated_at = excluded.updated_at
                """,
                (
                    *self._identity(spec.experiment_id, runner_name),
                    _point_store_key(point),
                    kind,
                    payload,
                    now,
                    now,
                ),
            )
            crash_point("point-pre-commit")
        crash_point("point-post-commit")

    def load_point(
        self, spec: SweepSpec, runner_name: str, point: SweepPoint
    ) -> Tuple[bool, Any]:
        """``(hit, value)`` — corruption quarantines and misses,
        exactly like the pickle cache."""
        row = self.db.connection().execute(
            """
            SELECT id, kind, payload, shard_id, shard_pos FROM points
            WHERE experiment_id = ? AND runner = ? AND code_version = ?
              AND point_key = ?
            """,
            (
                *self._identity(spec.experiment_id, runner_name),
                _point_store_key(point),
            ),
        ).fetchone()
        if row is None:
            return False, None
        row_id, kind, payload, shard_id, shard_pos = row
        if kind in col.COLUMN_KINDS:
            try:
                arrays = self._shard_point_arrays(shard_id)
            except StoreCorruptError:
                return False, None  # shard quarantined; re-execute
            self.stats["column_point"] += 1
            value = col.point_from_arrays(arrays, shard_pos)
            if kind != col.PAYLOAD_COLUMN:
                try:
                    value.update(self._decode_residual(kind, payload))
                except Exception:
                    with self._write() as conn:
                        conn.execute(
                            "DELETE FROM points WHERE id = ?", (row_id,)
                        )
                    return False, None
            return True, value
        try:
            if kind == col.PAYLOAD_JSON:
                self.stats["json_decode"] += 1
            else:
                self.stats["unpickle"] += 1
            return True, col.decode_value(kind, payload)
        except Exception:
            # Torn/garbage inline payload: drop the row so the point
            # re-executes instead of crashing every reader forever.
            with self._write() as conn:
                conn.execute("DELETE FROM points WHERE id = ?", (row_id,))
            return False, None

    def _decode_residual(self, kind: str, payload: bytes) -> Dict[str, Any]:
        """The inline non-scalar remainder of a columnarised point."""
        if kind == col.PAYLOAD_COLUMN_JSON:
            self.stats["json_decode"] += 1
            return col.decode_value(col.PAYLOAD_JSON, payload)
        self.stats["unpickle"] += 1
        return col.decode_value(col.PAYLOAD_PICKLE, payload)

    # -- outcomes (the RunJournal contract) ----------------------------------

    def record_outcome(
        self, experiment_id: str, runner_name: str, outcome: PointOutcome
    ) -> None:
        with self._write() as conn:
            conn.execute(
                """
                INSERT INTO outcomes (experiment_id, runner, code_version,
                    point_key, point_index, status, attempts, error,
                    traceback, attempt_seconds, cached, resumed, updated_at)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (experiment_id, runner, code_version, point_key)
                DO UPDATE SET point_index = excluded.point_index,
                              status = excluded.status,
                              attempts = excluded.attempts,
                              error = excluded.error,
                              traceback = excluded.traceback,
                              attempt_seconds = excluded.attempt_seconds,
                              cached = excluded.cached,
                              resumed = excluded.resumed,
                              updated_at = excluded.updated_at
                """,
                (
                    *self._identity(experiment_id, runner_name),
                    outcome.key,
                    outcome.index,
                    outcome.status,
                    outcome.attempts,
                    outcome.error,
                    outcome.traceback,
                    json.dumps(outcome.attempt_seconds),
                    int(outcome.cached),
                    int(outcome.resumed),
                    self.db.now(),
                ),
            )
            crash_point("outcome-pre-commit")
        crash_point("outcome-post-commit")

    def load_outcomes(
        self, experiment_id: str, runner_name: str
    ) -> Dict[str, PointOutcome]:
        """Point key -> journaled terminal outcome (reads are lock-free)."""
        rows = self.db.connection().execute(
            """
            SELECT point_key, point_index, status, attempts, error,
                   traceback, attempt_seconds, cached, resumed
            FROM outcomes
            WHERE experiment_id = ? AND runner = ? AND code_version = ?
            """,
            self._identity(experiment_id, runner_name),
        ).fetchall()
        outcomes: Dict[str, PointOutcome] = {}
        for row in rows:
            (key, index, status, attempts, error, trace, seconds,
             cached, resumed) = row
            if status not in STATUSES:
                continue
            outcomes[key] = PointOutcome(
                index=index,
                key=key,
                status=status,
                attempts=attempts,
                error=error,
                traceback=trace,
                attempt_seconds=list(json.loads(seconds)),
                cached=bool(cached),
                resumed=bool(resumed),
            )
        return outcomes

    def clear_outcomes(self, experiment_id: str, runner_name: str) -> None:
        with self._write() as conn:
            conn.execute(
                """
                DELETE FROM outcomes
                WHERE experiment_id = ? AND runner = ? AND code_version = ?
                """,
                self._identity(experiment_id, runner_name),
            )

    # -- campaigns (the CampaignJournal contract) ----------------------------

    def find_campaign_id(
        self, name: str, seed: int, code_version: Optional[str] = None
    ) -> Optional[int]:
        """The campaign's row id, or ``None`` — a pure read (status
        paths must never take the writer lock)."""
        row = self.db.connection().execute(
            "SELECT id FROM campaigns WHERE name = ? AND seed = ?"
            " AND code_version = ?",
            (name, seed, code_version or self.code_version),
        ).fetchone()
        return row[0] if row is not None else None

    def campaign_id(
        self, name: str, seed: int, code_version: Optional[str] = None
    ) -> int:
        version = code_version or self.code_version
        found = self.find_campaign_id(name, seed, version)
        if found is not None:
            return found
        now = self.db.now()
        with self._write() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO campaigns (name, seed, code_version,"
                " created_at, updated_at) VALUES (?, ?, ?, ?, ?)",
                (name, seed, version, now, now),
            )
        return self.campaign_id(name, seed, version)

    def record_stage_outcome(self, campaign_id: int, outcome: Any) -> None:
        with self._write() as conn:
            conn.execute(
                """
                INSERT INTO stages (campaign_id, name, status, attempts,
                    error, traceback, attempt_seconds, result_digest,
                    resumed, updated_at)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (campaign_id, name)
                DO UPDATE SET status = excluded.status,
                              attempts = excluded.attempts,
                              error = excluded.error,
                              traceback = excluded.traceback,
                              attempt_seconds = excluded.attempt_seconds,
                              result_digest = excluded.result_digest,
                              resumed = excluded.resumed,
                              updated_at = excluded.updated_at
                """,
                (
                    campaign_id,
                    outcome.stage,
                    outcome.status,
                    outcome.attempts,
                    outcome.error,
                    outcome.traceback,
                    json.dumps(outcome.attempt_seconds),
                    outcome.result_digest,
                    int(outcome.resumed),
                    self.db.now(),
                ),
            )
            crash_point("stage-pre-commit")
        crash_point("stage-post-commit")

    def load_stage_outcomes(self, campaign_id: int) -> Dict[str, Any]:
        from repro.campaigns.journal import STAGE_STATUSES, StageOutcome
        from repro.campaigns.journal import STATUS_SKIPPED

        rows = self.db.connection().execute(
            """
            SELECT name, status, attempts, error, traceback,
                   attempt_seconds, result_digest, resumed
            FROM stages WHERE campaign_id = ?
            """,
            (campaign_id,),
        ).fetchall()
        outcomes: Dict[str, Any] = {}
        for row in rows:
            name, status, attempts, error, trace, seconds, digest, res = row
            if status not in STAGE_STATUSES or status == STATUS_SKIPPED:
                continue
            outcomes[name] = StageOutcome(
                stage=name,
                status=status,
                attempts=attempts,
                error=error,
                traceback=trace,
                attempt_seconds=list(json.loads(seconds)),
                result_digest=digest,
                resumed=bool(res),
            )
        return outcomes

    def clear_stages(self, campaign_id: int) -> None:
        with self._write() as conn:
            conn.execute(
                "DELETE FROM stages WHERE campaign_id = ?", (campaign_id,)
            )
            conn.execute(
                "DELETE FROM stage_values WHERE campaign_id = ?",
                (campaign_id,),
            )

    def save_stage_value(
        self, campaign_id: int, stage: str, digest: str, value: Any
    ) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._write() as conn:
            conn.execute(
                """
                INSERT INTO stage_values (campaign_id, stage, digest,
                    value, updated_at)
                VALUES (?, ?, ?, ?, ?)
                ON CONFLICT (campaign_id, stage)
                DO UPDATE SET digest = excluded.digest,
                              value = excluded.value,
                              updated_at = excluded.updated_at
                """,
                (campaign_id, stage, digest, blob, self.db.now()),
            )
            crash_point("stage-value-pre-commit")
        crash_point("stage-value-post-commit")

    def load_stage_value(
        self, campaign_id: int, stage: str, expect_digest: Optional[str]
    ) -> Tuple[bool, Any]:
        """``(found, value)`` with digest verification — mismatch or
        unreadable blob means re-execute, never crash."""
        row = self.db.connection().execute(
            "SELECT digest, value FROM stage_values"
            " WHERE campaign_id = ? AND stage = ?",
            (campaign_id, stage),
        ).fetchone()
        if row is None:
            return False, None
        digest, blob = row
        if expect_digest is not None and digest != expect_digest:
            return False, None
        try:
            return True, pickle.loads(blob)
        except Exception:
            return False, None

    # -- columnar finalization -----------------------------------------------

    def _sweep_row(
        self, spec: SweepSpec, runner_name: str
    ) -> Optional[Tuple[int, str, int]]:
        row = self.db.connection().execute(
            """
            SELECT id, state, n_points FROM sweeps
            WHERE experiment_id = ? AND runner = ? AND code_version = ?
              AND spec_digest = ?
            """,
            (
                *self._identity(spec.experiment_id, runner_name),
                spec_digest(spec),
            ),
        ).fetchone()
        return row

    def register_sweep(
        self, spec: SweepSpec, runner_name: str, state: str = "open"
    ) -> int:
        row = self._sweep_row(spec, runner_name)
        if row is not None:
            return row[0]
        now = self.db.now()
        with self._write() as conn:
            conn.execute(
                """
                INSERT OR IGNORE INTO sweeps (experiment_id, runner,
                    code_version, spec_digest, spec_json, n_points, state,
                    created_at, updated_at)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    *self._identity(spec.experiment_id, runner_name),
                    spec_digest(spec),
                    json.dumps(spec.to_dict(), sort_keys=True),
                    len(spec),
                    state,
                    now,
                    now,
                ),
            )
        return self.register_sweep(spec, runner_name, state)

    def finalize_sweep(
        self,
        spec: SweepSpec,
        runner_name: str,
        shard_points: int = DEFAULT_SHARD_POINTS,
        require_complete: bool = True,
    ) -> int:
        """Move a completed sweep's scalar metrics into columnar shards.

        Idempotent: an already-columnar sweep returns immediately.
        Shard files are published (atomic rename) *before* the
        transaction that references them commits — a crash in between
        leaves orphan files for :meth:`gc`, never a torn shard behind
        a committed row.  Returns the number of shards written.
        """
        if shard_points < 1:
            raise ConfigurationError("shard_points must be >= 1")
        self.acquire()
        sweep_id = self.register_sweep(spec, runner_name)
        row = self._sweep_row(spec, runner_name)
        if row is not None and row[1] == "columnar":
            return 0
        points = spec.points()
        conn = self.db.connection()
        stored: Dict[str, Tuple[int, str, Optional[bytes]]] = {}
        for key, row_id, kind, payload in conn.execute(
            """
            SELECT point_key, id, kind, payload FROM points
            WHERE experiment_id = ? AND runner = ? AND code_version = ?
            """,
            self._identity(spec.experiment_id, runner_name),
        ):
            stored[key] = (row_id, kind, payload)
        missing = [
            point for point in points
            if _point_store_key(point) not in stored
        ]
        if missing and require_complete:
            raise StoreError(
                f"cannot finalize sweep {spec.experiment_id!r}: "
                f"{len(missing)} of {len(points)} points are not stored "
                "(run the sweep to completion first, or pass "
                "require_complete=False)"
            )
        shard_rows: List[Tuple[int, str, int, int, List[str]]] = []
        # (row_id, shard_seq, pos, kind, residual_payload)
        eligible_updates: List[
            Tuple[int, int, int, str, Optional[bytes]]
        ] = []
        for seq, start in enumerate(range(0, len(points), shard_points)):
            block = points[start:start + shard_points]
            values: List[Optional[Mapping[str, Any]]] = []
            rows_in_block: List[
                Optional[Tuple[int, Dict[str, Any]]]
            ] = []
            for point in block:
                entry = stored.get(_point_store_key(point))
                if entry is None:
                    values.append(None)
                    rows_in_block.append(None)
                    continue
                row_id, kind, payload = entry
                if kind in col.COLUMN_KINDS:
                    # Re-finalize after new points joined: recover the
                    # value from its current shard (+ residual).
                    shard_id, pos = conn.execute(
                        "SELECT shard_id, shard_pos FROM points"
                        " WHERE id = ?",
                        (row_id,),
                    ).fetchone()
                    value = col.point_from_arrays(
                        self._shard_point_arrays(shard_id), pos
                    )
                    if kind != col.PAYLOAD_COLUMN:
                        value.update(self._decode_residual(kind, payload))
                else:
                    value = col.decode_value(kind, payload)
                    if kind == col.PAYLOAD_JSON:
                        self.stats["json_decode"] += 1
                    else:
                        self.stats["unpickle"] += 1
                split = col.split_point(value)
                if split is None:
                    values.append(None)
                    rows_in_block.append(None)
                else:
                    scalars, residual = split
                    values.append(scalars)
                    rows_in_block.append((row_id, residual))
            arrays, metrics = col.build_shard_arrays(values)
            filename = f"sweep{sweep_id:06d}-{seq:04d}.npz"
            col.write_shard(self.db.shards_dir / filename, arrays)
            shard_rows.append((seq, filename, start, len(block), metrics))
            for pos, entry in enumerate(rows_in_block):
                if entry is None:
                    continue
                row_id, residual = entry
                if residual:
                    inline_kind, residual_payload = col.encode_value(
                        residual
                    )
                    kind = (
                        col.PAYLOAD_COLUMN_JSON
                        if inline_kind == col.PAYLOAD_JSON
                        else col.PAYLOAD_COLUMN_PICKLE
                    )
                else:
                    kind, residual_payload = col.PAYLOAD_COLUMN, None
                eligible_updates.append(
                    (row_id, seq, pos, kind, residual_payload)
                )
        now = self.db.now()
        with self.db.transaction() as conn:
            conn.execute(
                "DELETE FROM shards WHERE sweep_id = ?", (sweep_id,)
            )
            seq_to_id: Dict[int, int] = {}
            for seq, filename, start, count, metrics in shard_rows:
                cursor = conn.execute(
                    """
                    INSERT INTO shards (sweep_id, seq, filename,
                        start_index, count, metrics, created_at)
                    VALUES (?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        sweep_id, seq, filename, start, count,
                        json.dumps(metrics), now,
                    ),
                )
                seq_to_id[seq] = cursor.lastrowid
            for row_id, seq, pos, kind, residual_payload in eligible_updates:
                conn.execute(
                    "UPDATE points SET kind = ?, payload = ?,"
                    " shard_id = ?, shard_pos = ?, updated_at = ?"
                    " WHERE id = ?",
                    (
                        kind, residual_payload, seq_to_id[seq], pos, now,
                        row_id,
                    ),
                )
            conn.execute(
                "UPDATE sweeps SET state = 'columnar', n_points = ?,"
                " updated_at = ? WHERE id = ?",
                (len(points), now, sweep_id),
            )
            crash_point("finalize-pre-commit")
        crash_point("finalize-post-commit")
        self._shard_arrays.clear()
        return len(shard_rows)

    # -- shard reading -------------------------------------------------------

    def _shard_record(self, shard_id: int) -> Tuple[Path, int, int, List[str]]:
        row = self.db.connection().execute(
            "SELECT filename, start_index, count, metrics FROM shards"
            " WHERE id = ?",
            (shard_id,),
        ).fetchone()
        if row is None:
            raise StoreError(f"shard {shard_id} is not in the store")
        filename, start, count, metrics = row
        return (
            self.db.shards_dir / filename, start, count, json.loads(metrics)
        )

    def _shard_point_arrays(self, shard_id: int) -> Dict[str, Any]:
        """All metric arrays of one shard (cached; quarantines on
        corruption and raises :class:`StoreCorruptError`)."""
        cached = self._shard_arrays.get(shard_id)
        if cached is not None:
            return cached
        path, _start, _count, metrics = self._shard_record(shard_id)
        try:
            npz = col.open_shard(path)
            arrays = {
                metric: col.shard_metric_arrays(npz, metric)
                for metric in metrics
            }
            arrays = {
                metric: block for metric, block in arrays.items()
                if block is not None
            }
        except (OSError, EOFError, ValueError, KeyError,
                zipfile.BadZipFile) as exc:
            quarantined = self.quarantine_shard(shard_id)
            raise StoreCorruptError(
                f"metric shard {path.name} is unreadable ({exc}); "
                f"quarantined to {quarantined.name} — its points will "
                "re-execute on the next run"
            ) from exc
        self._shard_arrays[shard_id] = arrays
        return arrays

    def quarantine_shard(self, shard_id: int) -> Path:
        """Rename a bad shard aside and unlink its rows so every point
        it held becomes a clean cache miss."""
        path, _start, _count, _metrics = self._shard_record(shard_id)
        quarantined = path.with_name(path.name + ".corrupt")
        with contextlib.suppress(OSError):
            os.replace(path, quarantined)
        with self._write() as conn:
            conn.execute(
                "DELETE FROM points WHERE shard_id = ?", (shard_id,)
            )
            sweep = conn.execute(
                "SELECT sweep_id FROM shards WHERE id = ?", (shard_id,)
            ).fetchone()
            conn.execute("DELETE FROM shards WHERE id = ?", (shard_id,))
            if sweep is not None:
                conn.execute(
                    "UPDATE sweeps SET state = 'open', updated_at = ?"
                    " WHERE id = ?",
                    (self.db.now(), sweep[0]),
                )
        self._shard_arrays.pop(shard_id, None)
        return quarantined

    def read_column(
        self, spec: SweepSpec, runner_name: str, metric: str
    ) -> col.MetricColumn:
        """One metric across the whole grid, in spec point order.

        Touches only that metric's npz members — never unpickles a
        per-point dict (``stats['unpickle']`` stays flat; the
        benchmark asserts it).  Requires a finalized (columnar) sweep.
        """
        row = self._sweep_row(spec, runner_name)
        if row is None or row[1] != "columnar":
            raise StoreError(
                f"sweep {spec.experiment_id!r} is not finalized in this "
                "store — run it through the store cache, then call "
                "finalize_sweep()"
            )
        sweep_id, _state, n_points = row
        conn = self.db.connection()
        blocks = []
        for shard_id, start, count, metrics_json in conn.execute(
            "SELECT id, start_index, count, metrics FROM shards"
            " WHERE sweep_id = ? ORDER BY seq",
            (sweep_id,),
        ).fetchall():
            if metric not in json.loads(metrics_json):
                blocks.append((start, count, None))
                continue
            path, _s, _c, _m = self._shard_record(shard_id)
            try:
                npz = col.open_shard(path)
                arrays = col.shard_metric_arrays(npz, metric)
            except (OSError, EOFError, ValueError, KeyError,
                zipfile.BadZipFile) as exc:
                quarantined = self.quarantine_shard(shard_id)
                raise StoreCorruptError(
                    f"metric shard {path.name} is unreadable ({exc}); "
                    f"quarantined to {quarantined.name} — re-run the "
                    "sweep to restore its points, then finalize again"
                ) from exc
            blocks.append((start, count, arrays))
        self.stats["column_read"] += 1
        with contextlib.suppress(sqlite3.Error):
            with self.db.transaction() as conn:
                conn.execute(
                    "UPDATE sweeps SET last_read_at = ? WHERE id = ?",
                    (self.db.now(), sweep_id),
                )
        return col.assemble_column(metric, blocks, n_points)

    def sweep_metrics(self, spec: SweepSpec, runner_name: str) -> List[str]:
        """Metric names a finalized sweep's shards carry."""
        row = self._sweep_row(spec, runner_name)
        if row is None:
            return []
        metrics: List[str] = []
        seen = set()
        for (metrics_json,) in self.db.connection().execute(
            "SELECT metrics FROM shards WHERE sweep_id = ? ORDER BY seq",
            (row[0],),
        ):
            for metric in json.loads(metrics_json):
                if metric not in seen:
                    seen.add(metric)
                    metrics.append(metric)
        return metrics

    # -- submissions ---------------------------------------------------------

    def submit(
        self,
        name: str,
        spec: SweepSpec,
        runner_name: str,
        kind: str = "scenario-sweep",
    ) -> int:
        """Queue one sweep submission (state ``pending``)."""
        now = self.db.now()
        with self._write() as conn:
            cursor = conn.execute(
                """
                INSERT INTO submissions (name, kind, spec_json,
                    experiment_id, runner, code_version, state,
                    created_at, updated_at)
                VALUES (?, ?, ?, ?, ?, ?, 'pending', ?, ?)
                """,
                (
                    name,
                    kind,
                    json.dumps(spec.to_dict(), sort_keys=True),
                    *self._identity(spec.experiment_id, runner_name),
                    now,
                    now,
                ),
            )
            crash_point("submit-pre-commit")
            submission_id = cursor.lastrowid
        return submission_id

    def _set_submission_state(
        self, submission_id: int, state: str, **fields: Any
    ) -> None:
        assignments = ", ".join(
            ["state = ?", "updated_at = ?"]
            + [f"{name} = ?" for name in fields]
        )
        with self._write() as conn:
            conn.execute(
                f"UPDATE submissions SET {assignments} WHERE id = ?",
                (state, self.db.now(), *fields.values(), submission_id),
            )

    def submission(self, submission_id: int) -> Dict[str, Any]:
        row = self.db.connection().execute(
            """
            SELECT id, name, kind, spec_json, experiment_id, runner,
                   code_version, state, error, ok_points, failed_points,
                   claimed_by, lease_expires_at, attempts,
                   created_at, updated_at
            FROM submissions WHERE id = ?
            """,
            (submission_id,),
        ).fetchone()
        if row is None:
            raise UnknownSubmissionError(
                f"no submission with id {submission_id}"
            )
        keys = (
            "id", "name", "kind", "spec_json", "experiment_id", "runner",
            "code_version", "state", "error", "ok_points", "failed_points",
            "claimed_by", "lease_expires_at", "attempts",
            "created_at", "updated_at",
        )
        return dict(zip(keys, row))

    def status(self) -> List[Dict[str, Any]]:
        """Every submission, newest first."""
        rows = self.db.connection().execute(
            """
            SELECT id, name, kind, state, experiment_id, ok_points,
                   failed_points, error, claimed_by, lease_expires_at,
                   attempts, updated_at
            FROM submissions ORDER BY id DESC
            """
        ).fetchall()
        keys = (
            "id", "name", "kind", "state", "experiment_id", "ok_points",
            "failed_points", "error", "claimed_by", "lease_expires_at",
            "attempts", "updated_at",
        )
        return [dict(zip(keys, row)) for row in rows]

    def queue_summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Queue composition: per-state counts plus stale-lease count.

        A *stale lease* is a ``running`` submission whose lease has
        expired — its worker died (or wedged past the lease window)
        and the next claim will take it over.  A pure read: safe
        while workers are live.
        """
        now = self.db.now() if now is None else now
        conn = self.db.connection()
        counts = {state: 0 for state in SUBMISSION_STATES}
        for state, count in conn.execute(
            "SELECT state, COUNT(*) FROM submissions GROUP BY state"
        ):
            counts[state] = count
        stale = conn.execute(
            """
            SELECT COUNT(*) FROM submissions
            WHERE state = 'running' AND lease_expires_at IS NOT NULL
              AND lease_expires_at < ?
            """,
            (now,),
        ).fetchone()[0]
        counts["stale_leases"] = stale
        counts["depth"] = counts["pending"] + counts["running"]
        return counts

    # -- leases (the worker-pool claim protocol) -----------------------------

    def claim_next_submission(
        self,
        worker_id: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        now: Optional[float] = None,
        max_claims: Optional[int] = DEFAULT_MAX_CLAIMS,
    ) -> Optional[Dict[str, Any]]:
        """Atomically claim the oldest claimable submission, or None.

        Claimable: ``pending``, or ``running`` with an expired lease
        (its worker died — the per-point transactions mean the new
        holder re-runs only the uncommitted remainder).  The claim is
        one ``BEGIN IMMEDIATE`` transaction, so two workers can never
        claim the same submission: the loser sees the winner's
        committed ``claimed_by``.  A submission already claimed
        ``max_claims`` times is marked ``failed`` instead (poison
        protection); pass ``max_claims=None`` to retry forever.

        The claim re-stamps ``code_version`` with the executing
        worker's, exactly as :meth:`run_submission` does for deferred
        submissions.
        """
        if lease_seconds <= 0:
            raise ConfigurationError("lease_seconds must be > 0")
        now = self.db.now() if now is None else now
        claimed_id: Optional[int] = None
        with self._write() as conn:
            rows = conn.execute(
                """
                SELECT id, attempts FROM submissions
                WHERE state = 'pending'
                   OR (state = 'running' AND lease_expires_at IS NOT NULL
                       AND lease_expires_at < ?)
                ORDER BY id
                """,
                (now,),
            ).fetchall()
            for submission_id, attempts in rows:
                if max_claims is not None and attempts >= max_claims:
                    conn.execute(
                        """
                        UPDATE submissions
                        SET state = 'failed', claimed_by = NULL,
                            lease_expires_at = NULL, error = ?,
                            updated_at = ?
                        WHERE id = ?
                        """,
                        (
                            f"abandoned after {attempts} failed claims "
                            "(worker crash loop?)",
                            now,
                            submission_id,
                        ),
                    )
                    continue
                conn.execute(
                    """
                    UPDATE submissions
                    SET state = 'running', claimed_by = ?,
                        lease_expires_at = ?, attempts = attempts + 1,
                        code_version = ?, updated_at = ?
                    WHERE id = ?
                    """,
                    (
                        worker_id,
                        now + lease_seconds,
                        self.code_version,
                        now,
                        submission_id,
                    ),
                )
                claimed_id = submission_id
                break
            crash_point("lease-claim-pre-commit")
        crash_point("lease-claim-post-commit")
        if claimed_id is None:
            return None
        return self.submission(claimed_id)

    def heartbeat_submission(
        self,
        submission_id: int,
        worker_id: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        now: Optional[float] = None,
    ) -> bool:
        """Extend the lease; ``False`` means the lease was lost.

        Guarded on ``claimed_by``: a worker whose lease expired and
        was re-claimed cannot resurrect it — it must abort (the new
        holder owns the submission now).
        """
        now = self.db.now() if now is None else now
        with self._write() as conn:
            cursor = conn.execute(
                """
                UPDATE submissions
                SET lease_expires_at = ?, updated_at = ?
                WHERE id = ? AND state = 'running' AND claimed_by = ?
                """,
                (now + lease_seconds, now, submission_id, worker_id),
            )
            held = cursor.rowcount == 1
            crash_point("lease-heartbeat-pre-commit")
        crash_point("lease-heartbeat-post-commit")
        return held

    def release_submission(
        self,
        submission_id: int,
        worker_id: str,
        state: str,
        now: Optional[float] = None,
        **fields: Any,
    ) -> bool:
        """Release a held lease into ``state`` (guarded, fenced).

        Only the current holder succeeds (``True``); a stale worker's
        release is a no-op returning ``False`` — so a submission
        reaches its terminal state exactly once no matter how many
        expired claimants are still alive.  ``state='pending'``
        requeues (graceful drain); ``done``/``failed`` are terminal
        and may carry ``ok_points``/``failed_points``/``error``.
        """
        if state not in ("pending", "done", "failed"):
            raise ConfigurationError(
                f"cannot release a lease into state {state!r}"
            )
        now = self.db.now() if now is None else now
        assignments = "".join(
            f", {name} = ?" for name in fields
        )
        with self._write() as conn:
            cursor = conn.execute(
                f"""
                UPDATE submissions
                SET state = ?, claimed_by = NULL,
                    lease_expires_at = NULL, updated_at = ?{assignments}
                WHERE id = ? AND state = 'running' AND claimed_by = ?
                """,
                (state, now, *fields.values(), submission_id, worker_id),
            )
            released = cursor.rowcount == 1
            crash_point("lease-release-pre-commit")
        crash_point("lease-release-post-commit")
        return released

    def run_claimed_submission(
        self,
        submission_id: int,
        runner: Any,
        worker_id: str,
        workers: Optional[int] = None,
        policy: Optional[Any] = None,
        finalize: bool = True,
        shard_points: int = DEFAULT_SHARD_POINTS,
        on_outcome: Optional[Any] = None,
    ) -> Tuple[Any, bool]:
        """Execute a submission this worker has claimed.

        The lease-protocol sibling of :meth:`run_submission`: the
        claim already flipped the state to ``running`` and stamped
        the code version, so this only checks the fence, runs the
        store-backed sweep (resuming past committed points), finalizes
        the columns and releases the lease into ``done``/``failed``
        with a guarded update.  Returns ``(result, released)`` —
        ``released=False`` means the lease was lost mid-run and
        another worker owns the terminal transition.
        """
        from repro.experiments.sweep import run_sweep, runner_name

        record = self.submission(submission_id)
        if record["state"] != "running" or record["claimed_by"] != worker_id:
            raise LeaseError(
                f"submission {submission_id} is not held by "
                f"{worker_id!r} (state={record['state']!r}, "
                f"claimed_by={record['claimed_by']!r}); claim it first"
            )
        spec = SweepSpec.from_dict(json.loads(record["spec_json"]))
        name = runner_name(runner)
        if name != record["runner"]:
            raise ConfigurationError(
                f"submission {submission_id} was recorded for runner "
                f"{record['runner']!r}, got {name!r}"
            )
        try:
            result = run_sweep(
                spec,
                runner,
                workers=workers,
                cache=self.sweep_cache(),
                policy=policy,
                journal=self.run_journal(spec.experiment_id, name),
                resume=True,
                on_outcome=on_outcome,
            )
        except BaseException as exc:
            from repro.errors import WorkerDrainError

            if isinstance(exc, WorkerDrainError):
                # Graceful drain: requeue; committed points stay.
                self.release_submission(
                    submission_id, worker_id, "pending"
                )
            else:
                self.release_submission(
                    submission_id,
                    worker_id,
                    "failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        if finalize and result.failure_count == 0:
            self.finalize_sweep(spec, name, shard_points=shard_points)
        released = self.release_submission(
            submission_id,
            worker_id,
            "done" if result.failure_count == 0 else "failed",
            ok_points=result.ok_count,
            failed_points=result.failure_count,
            error=(
                None if result.failure_count == 0 else
                result.failures()[0].describe()
            ),
        )
        return result, released

    def run_submission(
        self,
        submission_id: int,
        runner: Any,
        workers: Optional[int] = None,
        policy: Optional[Any] = None,
        finalize: bool = True,
    ) -> Any:
        """Execute one submission through the store-backed sweep path.

        The sweep runs with this store as cache *and* journal, so a
        crash mid-run resumes from the committed points; afterwards
        the sweep is finalized into columnar shards and the
        submission flipped to ``done``/``failed``.
        """
        from repro.experiments.sweep import run_sweep, runner_name

        record = self.submission(submission_id)
        spec = SweepSpec.from_dict(json.loads(record["spec_json"]))
        name = runner_name(runner)
        if name != record["runner"]:
            raise ConfigurationError(
                f"submission {submission_id} was recorded for runner "
                f"{record['runner']!r}, got {name!r}"
            )
        # Re-stamp the code version at execution time: a deferred
        # submission run from a newer checkout stores (and must later
        # read) its points under the executing version.
        self._set_submission_state(
            submission_id, "running", code_version=self.code_version
        )
        try:
            result = run_sweep(
                spec,
                runner,
                workers=workers,
                cache=self.sweep_cache(),
                policy=policy,
                journal=self.run_journal(spec.experiment_id, name),
                resume=True,
            )
        except BaseException as exc:
            self._set_submission_state(
                submission_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            raise
        if finalize and result.failure_count == 0:
            self.finalize_sweep(spec, name)
        self._set_submission_state(
            submission_id,
            "done" if result.failure_count == 0 else "failed",
            ok_points=result.ok_count,
            failed_points=result.failure_count,
            error=(
                None if result.failure_count == 0 else
                result.failures()[0].describe()
            ),
        )
        return result

    def results_rows(
        self,
        submission_id: int,
        metrics: Optional[Sequence[str]] = None,
    ) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` for one submission's grid — read off the
        metric columns, one point per row, in spec point order."""
        record = self.submission(submission_id)
        spec = SweepSpec.from_dict(json.loads(record["spec_json"]))
        names = list(
            metrics
            if metrics is not None
            else self.sweep_metrics_for(record)
        )
        columns = {}
        for metric in names:
            columns[metric] = self._read_column_for(record, spec, metric)
        points = spec.points()
        headers = ["index", "params"] + names
        rows = []
        for point in points:
            row: List[Any] = [point.index, canonical_params(point.params)]
            for metric in names:
                row.append(columns[metric][point.index])
            rows.append(row)
        return headers, rows

    def sweep_metrics_for(self, record: Mapping[str, Any]) -> List[str]:
        spec = SweepSpec.from_dict(json.loads(record["spec_json"]))
        store = ResultStore(self.directory, code_version=record["code_version"])
        store.db = self.db  # share the connection/lock
        return store.sweep_metrics(spec, record["runner"])

    def _read_column_for(
        self, record: Mapping[str, Any], spec: SweepSpec, metric: str
    ) -> List[Any]:
        scoped = ResultStore(
            self.directory, code_version=record["code_version"]
        )
        scoped.db = self.db
        scoped.stats = self.stats
        scoped._shard_arrays = self._shard_arrays
        return scoped.read_column(spec, record["runner"], metric).tolist()

    # -- verification / gc ---------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Read-only health report: SQLite integrity + shard headers."""
        report: Dict[str, Any] = {"ok": True, "issues": []}
        try:
            self.db.verify()
        except StoreCorruptError as exc:
            report["ok"] = False
            report["issues"].append(str(exc))
        conn = self.db.connection()
        for shard_id, filename in conn.execute(
            "SELECT id, filename FROM shards"
        ).fetchall():
            path = self.db.shards_dir / filename
            try:
                npz = col.open_shard(path)
                npz.files  # forces the zip directory read
            except (OSError, EOFError, ValueError, zipfile.BadZipFile) as exc:
                report["ok"] = False
                report["issues"].append(
                    f"shard {filename} (id {shard_id}): {exc}"
                )
        for table in ("points", "outcomes", "sweeps", "submissions"):
            report[table] = conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
        return report

    def gc(
        self,
        keep_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, Any]:
        """Collect garbage: orphan shard files, stale temp files and —
        with ``keep_days`` — whole sweeps neither written nor read
        within that window (their points, shards and files).

        Quarantined ``*.corrupt`` files are never touched: they are
        evidence.  Returns a report of what was (or with ``dry_run``
        would be) removed.
        """
        conn = self.db.connection()
        referenced = {
            filename for (filename,) in conn.execute(
                "SELECT filename FROM shards"
            )
        }
        report: Dict[str, Any] = {
            "orphan_files": [],
            "sweeps_removed": 0,
            "points_removed": 0,
            "bytes_freed": 0,
            "dry_run": dry_run,
        }
        stale_sweeps: List[int] = []
        if keep_days is not None:
            horizon = self.db.now() - keep_days * 86400.0
            for sweep_id, in conn.execute(
                """
                SELECT id FROM sweeps
                WHERE max(updated_at, coalesce(last_read_at, 0)) < ?
                """,
                (horizon,),
            ).fetchall():
                stale_sweeps.append(sweep_id)
            stale_files = {
                filename for (filename,) in conn.execute(
                    f"""
                    SELECT filename FROM shards WHERE sweep_id IN
                    ({",".join("?" * len(stale_sweeps))})
                    """,
                    stale_sweeps,
                )
            } if stale_sweeps else set()
            referenced -= stale_files
        if self.db.shards_dir.is_dir():
            for path in sorted(self.db.shards_dir.iterdir()):
                if path.name.endswith(".corrupt"):
                    continue
                if path.name in referenced:
                    continue
                report["orphan_files"].append(path.name)
                report["bytes_freed"] += path.stat().st_size
                if not dry_run:
                    with contextlib.suppress(OSError):
                        path.unlink()
        if stale_sweeps and not dry_run:
            with self._write() as conn:
                for sweep_id in stale_sweeps:
                    identity = conn.execute(
                        "SELECT experiment_id, runner, code_version"
                        " FROM sweeps WHERE id = ?",
                        (sweep_id,),
                    ).fetchone()
                    removed = conn.execute(
                        "DELETE FROM points WHERE experiment_id = ?"
                        " AND runner = ? AND code_version = ?",
                        identity,
                    ).rowcount
                    report["points_removed"] += removed
                    conn.execute(
                        "DELETE FROM sweeps WHERE id = ?", (sweep_id,)
                    )
                    report["sweeps_removed"] += 1
        elif stale_sweeps:
            report["sweeps_removed"] = len(stale_sweeps)
        self._shard_arrays.clear()
        return report
