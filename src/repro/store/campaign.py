"""Store-backed campaign journal.

:class:`StoreCampaignJournal` speaks the
:class:`~repro.campaigns.journal.CampaignJournal` contract against
the store's ``campaigns``/``stages`` tables; the stage *values* the
engine persists next to the journal live in ``stage_values`` (pickled
blobs with the same ``result_digest`` verification as the pickle-file
path).  ``CampaignEngine(store=...)`` switches both over — see
:meth:`repro.campaigns.engine.CampaignEngine.journal`.

The durability ordering the engine relies on is preserved: the value
commits in its own transaction *before* the stage outcome that
promises it, so a crash between the two re-executes the stage rather
than trusting a phantom value.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.campaigns.journal import CampaignJournal, StageOutcome
from repro.store.api import ResultStore
from repro.store.db import STORE_DB_FILENAME


class StoreCampaignJournal(CampaignJournal):
    """The ``CampaignJournal`` contract against the store's tables.

    Subclasses :class:`CampaignJournal` so the engine's journal
    handling works unchanged; every file operation is overridden to
    hit SQLite.  The campaign row (``name``, ``seed``,
    ``code_version``) is the same identity
    :func:`~repro.campaigns.journal.campaign_digest` encodes into
    journal file names.
    """

    def __init__(
        self,
        store: ResultStore,
        name: str,
        seed: int,
        code_version: str,
    ) -> None:
        super().__init__(store.directory / STORE_DB_FILENAME)
        self.result_store = store
        self.campaign_name = name
        self.campaign_seed = seed
        self.campaign_code_version = code_version
        self._campaign_id: Any = None

    @property
    def campaign_id(self) -> int:
        if self._campaign_id is None:
            self._campaign_id = self.result_store.campaign_id(
                self.campaign_name,
                self.campaign_seed,
                self.campaign_code_version,
            )
        return self._campaign_id

    # -- locking -------------------------------------------------------------

    def acquire(self) -> None:
        self.result_store.acquire()

    def _release_lock(self) -> None:  # pragma: no cover - via close()
        self.result_store.release()

    # -- journal operations --------------------------------------------------

    def load(self) -> Dict[str, StageOutcome]:
        # Read-only lookup: a status query on a campaign that never
        # ran must not create its row (or take the writer lock).
        found = self.result_store.find_campaign_id(
            self.campaign_name,
            self.campaign_seed,
            self.campaign_code_version,
        )
        if found is None:
            return {}
        self._campaign_id = found
        return self.result_store.load_stage_outcomes(found)

    def record(self, record: StageOutcome) -> None:
        self.result_store.record_stage_outcome(self.campaign_id, record)

    def reset(self) -> None:
        self.result_store.clear_stages(self.campaign_id)

    def compact(self) -> int:
        return 0

    def close(self) -> None:
        self.result_store.release()

    # -- stage values --------------------------------------------------------

    def save_value(self, stage: str, digest: str, value: Any) -> None:
        self.result_store.save_stage_value(
            self.campaign_id, stage, digest, value
        )

    def load_value(self, stage: str, expect_digest: Any) -> Any:
        return self.result_store.load_stage_value(
            self.campaign_id, stage, expect_digest
        )
