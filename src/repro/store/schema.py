"""Versioned SQLite schema for the durable result store.

One source of truth for every table the store owns, expressed as
explicit per-version DDL plus a linear migration chain.  The schema
version lives in the ``meta`` table (``key='schema_version'``); opening
a store compares it against :data:`SCHEMA_VERSION`:

- equal — use as is;
- older — run each migration step inside one transaction (a crash
  mid-migration rolls back to the old, still-valid version);
- newer — raise :class:`~repro.errors.StoreSchemaError` (the data is
  from a future library; never quarantine it);
- missing/garbage — the file is not a store; quarantine it.

Tables (v3):

``meta``
    Schema version and store identity.
``sweeps``
    One row per finalized sweep grid: ``(experiment_id, runner,
    code_version, spec_digest)`` identity, point count, columnar
    state, gc bookkeeping (``last_read_at``, v2).
``points``
    One row per executed sweep point, keyed by the same cache key the
    pickle :class:`~repro.experiments.sweep.SweepCache` uses.  The
    value lives inline (``payload``: canonical JSON for scalar metric
    dicts, pickle otherwise) until finalization moves scalar metrics
    into a columnar shard (``shard_id``/``shard_pos``).
``shards``
    One row per npz metric shard: owning sweep, point range, member
    metrics.  Files live under ``shards/`` next to the database.
``outcomes``
    Terminal :class:`~repro.experiments.resilience.PointOutcome`
    records — the store-backed run journal.
``campaigns`` / ``stages`` / ``stage_values``
    Campaign identity, stage-granular outcome journal, and pickled
    stage values with digests — the store-backed campaign journal.
``submissions``
    Queue of submitted sweeps for the ``store submit|status|results``
    verbs — and, since v3, the *work queue* the service worker pool
    drains: ``claimed_by``/``lease_expires_at`` implement lease-based
    claiming (see :mod:`repro.service.workers`), ``attempts`` counts
    claims so poison submissions fail instead of crash-looping.
``code_versions``
    First-seen registry of code versions (v2, gc reporting).
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Dict, List

#: The schema version this code writes and expects.
SCHEMA_VERSION = 3

#: The oldest version :func:`migrate` can upgrade from.
OLDEST_SUPPORTED_VERSION = 1

_V1_DDL: List[str] = [
    """
    CREATE TABLE meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE sweeps (
        id            INTEGER PRIMARY KEY,
        experiment_id TEXT NOT NULL,
        runner        TEXT NOT NULL,
        code_version  TEXT NOT NULL,
        spec_digest   TEXT NOT NULL,
        spec_json     TEXT,
        n_points      INTEGER NOT NULL,
        state         TEXT NOT NULL DEFAULT 'open',
        created_at    REAL NOT NULL,
        updated_at    REAL NOT NULL,
        UNIQUE (experiment_id, runner, code_version, spec_digest)
    )
    """,
    """
    CREATE TABLE points (
        id            INTEGER PRIMARY KEY,
        experiment_id TEXT NOT NULL,
        runner        TEXT NOT NULL,
        code_version  TEXT NOT NULL,
        point_key     TEXT NOT NULL,
        kind          TEXT NOT NULL,
        payload       BLOB,
        shard_id      INTEGER REFERENCES shards (id) ON DELETE SET NULL,
        shard_pos     INTEGER,
        created_at    REAL NOT NULL,
        updated_at    REAL NOT NULL,
        UNIQUE (experiment_id, runner, code_version, point_key)
    )
    """,
    """
    CREATE TABLE shards (
        id          INTEGER PRIMARY KEY,
        sweep_id    INTEGER NOT NULL REFERENCES sweeps (id)
                    ON DELETE CASCADE,
        seq         INTEGER NOT NULL,
        filename    TEXT NOT NULL,
        start_index INTEGER NOT NULL,
        count       INTEGER NOT NULL,
        metrics     TEXT NOT NULL,
        created_at  REAL NOT NULL,
        UNIQUE (sweep_id, seq)
    )
    """,
    """
    CREATE TABLE outcomes (
        experiment_id   TEXT NOT NULL,
        runner          TEXT NOT NULL,
        code_version    TEXT NOT NULL,
        point_key       TEXT NOT NULL,
        point_index     INTEGER NOT NULL,
        status          TEXT NOT NULL,
        attempts        INTEGER NOT NULL,
        error           TEXT,
        traceback       TEXT,
        attempt_seconds TEXT NOT NULL DEFAULT '[]',
        cached          INTEGER NOT NULL DEFAULT 0,
        resumed         INTEGER NOT NULL DEFAULT 0,
        updated_at      REAL NOT NULL,
        PRIMARY KEY (experiment_id, runner, code_version, point_key)
    )
    """,
    """
    CREATE TABLE campaigns (
        id           INTEGER PRIMARY KEY,
        name         TEXT NOT NULL,
        seed         INTEGER NOT NULL,
        code_version TEXT NOT NULL,
        created_at   REAL NOT NULL,
        updated_at   REAL NOT NULL,
        UNIQUE (name, seed, code_version)
    )
    """,
    """
    CREATE TABLE stages (
        campaign_id     INTEGER NOT NULL REFERENCES campaigns (id)
                        ON DELETE CASCADE,
        name            TEXT NOT NULL,
        status          TEXT NOT NULL,
        attempts        INTEGER NOT NULL DEFAULT 1,
        error           TEXT,
        traceback       TEXT,
        attempt_seconds TEXT NOT NULL DEFAULT '[]',
        result_digest   TEXT,
        resumed         INTEGER NOT NULL DEFAULT 0,
        updated_at      REAL NOT NULL,
        PRIMARY KEY (campaign_id, name)
    )
    """,
    """
    CREATE TABLE stage_values (
        campaign_id INTEGER NOT NULL REFERENCES campaigns (id)
                    ON DELETE CASCADE,
        stage       TEXT NOT NULL,
        digest      TEXT NOT NULL,
        value       BLOB NOT NULL,
        updated_at  REAL NOT NULL,
        PRIMARY KEY (campaign_id, stage)
    )
    """,
    """
    CREATE TABLE submissions (
        id            INTEGER PRIMARY KEY,
        name          TEXT NOT NULL,
        kind          TEXT NOT NULL DEFAULT 'scenario-sweep',
        spec_json     TEXT NOT NULL,
        experiment_id TEXT NOT NULL,
        runner        TEXT NOT NULL,
        code_version  TEXT NOT NULL,
        state         TEXT NOT NULL DEFAULT 'pending',
        error         TEXT,
        ok_points     INTEGER,
        failed_points INTEGER,
        created_at    REAL NOT NULL,
        updated_at    REAL NOT NULL
    )
    """,
    """
    CREATE INDEX idx_points_sweep_scan
        ON points (experiment_id, runner, code_version)
    """,
]

_V2_MIGRATION: List[str] = [
    # gc bookkeeping: retention decisions need "when was this sweep
    # last read", which v1 never tracked.
    "ALTER TABLE sweeps ADD COLUMN last_read_at REAL",
    """
    CREATE TABLE code_versions (
        version    TEXT PRIMARY KEY,
        first_seen REAL NOT NULL
    )
    """,
    """
    CREATE INDEX idx_submissions_state
        ON submissions (state, updated_at)
    """,
]

_V3_MIGRATION: List[str] = [
    # Lease-based claiming for the service worker pool: a worker
    # claims a pending (or expired-lease) submission atomically,
    # heartbeats to extend the lease, and releases it with a guarded
    # update — a dead worker's lease simply expires, so another
    # worker re-runs only the uncommitted remainder.
    "ALTER TABLE submissions ADD COLUMN claimed_by TEXT",
    "ALTER TABLE submissions ADD COLUMN lease_expires_at REAL",
    # Claim attempts so a poison submission (one that reliably kills
    # its worker) lands in 'failed' instead of crash-looping the pool.
    "ALTER TABLE submissions ADD COLUMN attempts INTEGER NOT NULL DEFAULT 0",
    """
    CREATE INDEX idx_submissions_lease
        ON submissions (state, lease_expires_at)
    """,
]

#: from-version -> DDL statements lifting the schema one version.
MIGRATIONS: Dict[int, List[str]] = {
    1: _V2_MIGRATION,
    2: _V3_MIGRATION,
}


def _atomic(conn: sqlite3.Connection, statements_fn: Callable[[], None]) -> None:
    """Run ``statements_fn`` inside one explicit transaction.

    The store connection is in autocommit mode (``isolation_level =
    None``), where ``with conn:`` would commit each DDL statement
    individually — an explicit BEGIN..COMMIT is the only way to make
    schema creation/migration all-or-nothing.
    """
    own = not conn.in_transaction
    if own:
        conn.execute("BEGIN IMMEDIATE")
    try:
        statements_fn()
    except BaseException:
        if own and conn.in_transaction:
            conn.execute("ROLLBACK")
        raise
    if own:
        conn.execute("COMMIT")


def create_schema(conn: sqlite3.Connection, version: int = SCHEMA_VERSION) -> None:
    """Create a fresh schema at ``version`` (v1 kept for migration tests)."""
    if not OLDEST_SUPPORTED_VERSION <= version <= SCHEMA_VERSION:
        raise ValueError(f"cannot create schema version {version}")

    def build() -> None:
        for statement in _V1_DDL:
            conn.execute(statement)
        for step in range(1, version):
            for statement in MIGRATIONS[step]:
                conn.execute(statement)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(version),),
        )

    _atomic(conn, build)


def read_schema_version(conn: sqlite3.Connection) -> int:
    """The stored schema version (raises ``sqlite3.Error``/``ValueError``
    when the file carries no readable version — i.e. is not a store)."""
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        raise ValueError("store has no schema_version row")
    return int(row[0])


def migrate(
    conn: sqlite3.Connection,
    from_version: int,
    to_version: int = SCHEMA_VERSION,
    on_step: Callable[[int], None] = lambda v: None,
) -> int:
    """Lift the schema from ``from_version`` to ``to_version``.

    The whole chain runs in one transaction: a crash mid-migration
    rolls back to the old version, never a half-migrated hybrid.
    Returns the number of versions applied.
    """
    applied = 0

    def lift() -> None:
        nonlocal applied
        for step in range(from_version, to_version):
            for statement in MIGRATIONS[step]:
                conn.execute(statement)
            applied += 1
            on_step(step + 1)
        if applied:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(to_version),),
            )

    _atomic(conn, lift)
    return applied
