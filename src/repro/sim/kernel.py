"""The discrete-event simulation kernel.

The kernel owns the simulated clock and the event heap.  Components
create events and processes through the kernel's factory methods and the
kernel advances time by popping triggered events in ``(time, priority,
sequence)`` order and running their callbacks.

The design is deliberately simpy-like: processes are generators that
yield events, and the full simulation is deterministic for a fixed event
schedule (ties are broken by insertion order).
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.events import NORMAL, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Heap entry: (time, priority, sequence number, event).
_HeapEntry = Tuple[float, int, int, Event]


class EmptySchedule(SimulationError):
    """Raised internally when the event heap runs dry."""


class Kernel:
    """Discrete-event simulation kernel with a floating-point clock.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (default ``0.0``).
        Experiments replaying traces may start at an arbitrary epoch.
    """

    __slots__ = ("_now", "_heap", "_sequence", "_active_process")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[_HeapEntry] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    # -- clock & introspection --------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queued_event_count(self) -> int:
        """Number of triggered-but-unprocessed events on the heap."""
        return len(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        return AnyOf(self, list(events))

    # -- scheduling & execution ---------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Place a triggered event on the heap ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._sequence += 1
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._sequence, event)
        )

    def step(self) -> None:
        """Process the single next event; raise if the heap is empty."""
        try:
            self._now, _, _, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody consumed: crash the simulation loudly so
            # bugs in models do not pass silently.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            a number
                run until the clock reaches that time (the clock is set
                to exactly ``until`` even if no event fires then).
            an :class:`~repro.sim.events.Event`
                run until that event is processed and return its value.
        """
        if until is None:
            return self._run_until_empty()
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(float(until))

    def _run_until_empty(self) -> None:
        while self._heap:
            self.step()

    def _run_until_time(self, until: float) -> None:
        if until < self._now:
            raise SimulationError(
                f"until={until!r} lies in the past (now={self._now!r})"
            )
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = until

    def _run_until_event(self, until: Event) -> Any:
        if until.callbacks is None:
            # Already processed.
            if not until._ok and not until._defused:
                raise until._value
            return until._value
        stop = _StopFlag()
        until.callbacks.append(stop.set)
        while not stop.is_set:
            if not self._heap:
                raise SimulationError(
                    "simulation ran out of events before the until-event fired"
                )
            self.step()
        if not until._ok:
            until._defused = True
            raise until._value
        return until._value

    def __repr__(self) -> str:
        return f"<Kernel t={self._now!r} queued={len(self._heap)}>"


class _StopFlag:
    """Tiny callback target used by :meth:`Kernel._run_until_event`."""

    __slots__ = ("is_set",)

    def __init__(self) -> None:
        self.is_set = False

    def set(self, _event: Event) -> None:
        self.is_set = True
