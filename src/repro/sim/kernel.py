"""The discrete-event simulation kernel.

The kernel owns the simulated clock and the event heap.  Components
create events and processes through the kernel's factory methods and the
kernel advances time by popping triggered events in ``(time, priority,
sequence)`` order and running their callbacks.

The design is deliberately simpy-like: processes are generators that
yield events, and the full simulation is deterministic for a fixed event
schedule (ties are broken by insertion order).

Fast-path design (docs/architecture.md, "Kernel fast path"):

- Heap entries are ``(time, key, event)`` 3-tuples with the packed int
  key from :mod:`repro.sim.events` — ordering is identical to the old
  ``(time, priority, sequence, event)`` 4-tuples, one comparison level
  cheaper.
- :meth:`run` drains events through a single inlined loop instead of a
  :meth:`step` method call per event, retiring whole same-timestamp
  cascades per outer iteration (the ``until`` bound is checked once per
  distinct timestamp, not once per event).
- Cancelled entries (:meth:`cancel`, :meth:`Timeout.cancel`) are
  *lazily deleted*: they stay on the heap and are skipped at pop time.
  A live-entry counter keeps :attr:`queued_event_count` truthful and
  :meth:`peek` discards the dead prefix before reading the head.
- Short-lived internal events (timeouts, process initialisers, store
  and resource bookkeeping events) are recycled through per-kernel free
  lists.  After an event's callbacks have run, a refcount check proves
  whether any user code can still observe the instance; only then is it
  cleared and pooled, so recycling is semantically invisible (and
  therefore cannot perturb determinism).  Pooling requires CPython
  refcount semantics and can be disabled with ``REPRO_SIM_POOL=0`` or
  ``Kernel(pooling=False)``.
"""

from __future__ import annotations

import heapq
import os
import platform
from sys import getrefcount
from typing import Any, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.events import (
    HEAP_RECYCLABLE,
    KEY_SHIFT,
    NORMAL,
    PENDING,
    POOL_CAP,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

#: Heap entry: (time, packed priority/sequence key, event).
_HeapEntry = Tuple[float, int, Event]

_INFINITY = float("inf")

#: Free-list pooling relies on CPython refcount semantics; other
#: interpreters fall back to plain allocation (results are identical
#: either way — pooling only recycles provably unobservable instances).
_POOLING_DEFAULT = (
    platform.python_implementation() == "CPython"
    and os.environ.get("REPRO_SIM_POOL", "1") != "0"
)


class EmptySchedule(SimulationError):
    """Raised internally when the event heap runs dry."""


class Kernel:
    """Discrete-event simulation kernel with a floating-point clock.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (default ``0.0``).
        Experiments replaying traces may start at an arbitrary epoch.
    pooling:
        Whether processed internal events may be recycled through free
        lists (default: on under CPython unless ``REPRO_SIM_POOL=0``).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_sequence",
        "_active_process",
        "_live",
        "_pools",
        "_pooling",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        pooling: Optional[bool] = None,
    ) -> None:
        self._now = float(initial_time)
        self._heap: List[_HeapEntry] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: Number of scheduled-and-not-cancelled entries on the heap.
        self._live = 0
        #: Per-class free lists of recycled event instances.
        self._pools: dict = {}
        self._pooling = _POOLING_DEFAULT if pooling is None else bool(pooling)

    # -- clock & introspection --------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queued_event_count(self) -> int:
        """Number of triggered-but-unprocessed events on the heap.

        Lazily-deleted (cancelled) entries are not counted.
        """
        return self._live

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Cancelled entries at the front of the heap are discarded first,
        so the reported time is always that of a live event.
        """
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
        if not heap:
            return _INFINITY
        return heap[0][0]

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        pool = self._pools.get(Timeout)
        if pool:
            timeout = pool.pop()
            timeout.__init__(self, delay, value)
            return timeout
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        pool = self._pools.get(Process)
        if pool:
            process = pool.pop()
            process.__init__(self, generator, name=name)
            return process
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        pool = self._pools.get(AllOf)
        if pool:
            condition = pool.pop()
            condition.__init__(self, list(events))
            return condition
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any event in ``events`` has fired."""
        pool = self._pools.get(AnyOf)
        if pool:
            condition = pool.pop()
            condition.__init__(self, list(events))
            return condition
        return AnyOf(self, list(events))

    # -- scheduling & execution ---------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Place a triggered event on the heap ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._sequence = sequence = self._sequence + 1
        self._live += 1
        heapq.heappush(
            self._heap,
            (self._now + delay, (priority << KEY_SHIFT) | sequence, event),
        )

    def cancel(self, event: Event) -> None:
        """Lazily delete a scheduled event from the heap.

        The entry stays on the heap but is skipped — without running
        callbacks or advancing the clock — when it surfaces.  Cancelling
        twice is a no-op; cancelling an event that is not scheduled (or
        was already processed) is an error.
        """
        if event._cancelled:
            return
        if event.callbacks is None:
            raise SimulationError(f"cannot cancel {event!r}: already processed")
        if event._value is PENDING:
            raise SimulationError(f"cannot cancel {event!r}: not scheduled")
        event._cancelled = True
        self._live -= 1

    def step(self) -> None:
        """Process the single next live event; raise if none remain.

        :meth:`run` does not go through this method (it drains the heap
        through an inlined loop); ``step`` is the single-event API for
        tests and interactive use.
        """
        heap = self._heap
        pop = heapq.heappop
        while True:
            try:
                self._now, _, event = pop(heap)
            except IndexError:
                raise EmptySchedule("no more events scheduled") from None
            if not event._cancelled:
                break

        self._live -= 1
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody consumed: crash the simulation loudly so
            # bugs in models do not pass silently.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            a number
                run until the clock reaches that time (the clock is set
                to exactly ``until`` even if no event fires then).
            an :class:`~repro.sim.events.Event`
                run until that event is processed and return its value.
        """
        if until is None:
            self._drain(_INFINITY, None)
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(float(until))

    def _drain(self, limit: float, stop: Optional[list]) -> None:
        """Inlined event loop: process live events while the head's time
        is within ``limit``, a whole same-timestamp cascade per outer
        iteration.  ``stop`` (when given) aborts after the event that
        filled it was processed."""
        heap = self._heap
        pop = heapq.heappop
        pooling = self._pooling
        pools = self._pools
        recyclers = HEAP_RECYCLABLE
        while heap:
            if heap[0][2]._cancelled:
                pop(heap)
                continue
            now = heap[0][0]
            if now > limit:
                return
            self._now = now
            # Retire the entire cascade scheduled for this timestamp.
            while heap and heap[0][0] == now:
                _, _, event = pop(heap)
                if event._cancelled:
                    continue
                self._live -= 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failure nobody consumed: crash the simulation
                    # loudly so bugs in models do not pass silently.
                    raise event._value
                if pooling and getrefcount(event) == 2:
                    # Nothing outside this frame can ever observe the
                    # instance again: clear and recycle it.
                    cls = event.__class__
                    clear = recyclers.get(cls)
                    if clear is not None:
                        pool = pools.get(cls)
                        if pool is None:
                            pool = pools[cls] = []
                        if len(pool) < POOL_CAP:
                            clear(event)
                            pool.append(event)
                if stop is not None and stop:
                    return

    def _run_until_time(self, until: float) -> None:
        if until < self._now:
            raise SimulationError(
                f"until={until!r} lies in the past (now={self._now!r})"
            )
        self._drain(until, None)
        self._now = until

    def _run_until_event(self, until: Event) -> Any:
        if until.callbacks is None:
            # Already processed.
            if not until._ok and not until._defused:
                raise until._value
            return until._value
        stop: list = []
        until.callbacks.append(stop.append)
        self._drain(_INFINITY, stop)
        if not stop:
            raise SimulationError(
                "simulation ran out of events before the until-event fired"
            )
        if not until._ok:
            until._defused = True
            raise until._value
        return until._value

    def __repr__(self) -> str:
        return f"<Kernel t={self._now!r} queued={self._live}>"
