"""Continuous-quantity container (fluid-level semantics).

A :class:`Container` holds a divisible quantity (e.g. an energy budget,
QPU shot credits in an accounting model).  ``put`` blocks while the
addition would exceed capacity; ``get`` blocks while the level is
insufficient.  Waiters are served FIFO among their own kind, with gets
and puts re-examined after every level change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class ContainerPut(Event):
    """Pending addition of ``amount`` to a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"put amount must be positive: {amount!r}")
        super().__init__(container.kernel)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class ContainerGet(Event):
    """Pending removal of ``amount`` from a container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"get amount must be positive: {amount!r}")
        super().__init__(container.kernel)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class Container:
    """A divisible quantity with optional capacity bound."""

    def __init__(
        self,
        kernel: "Kernel",
        capacity: Optional[float] = None,
        init: float = 0.0,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity!r}")
        if init < 0:
            raise SimulationError(f"initial level must be >= 0: {init!r}")
        if capacity is not None and init > capacity:
            raise SimulationError("initial level exceeds capacity")
        self.kernel = kernel
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        """Current stored quantity."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires once the addition fits under capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires once the level suffices."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if (
                    self.capacity is None
                    or self._level + put.amount <= self.capacity
                ):
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if get.amount <= self._level:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progress = True

    def __repr__(self) -> str:
        return f"<Container level={self._level!r} capacity={self.capacity!r}>"
