"""Capacity-constrained resources with FIFO, priority and preemption.

A :class:`Resource` models a pool of identical capacity slots (e.g.
compute nodes in the abstract, a device service slot).  Processes
acquire a slot by yielding a :class:`Request` and release it with
:meth:`Resource.release` (or by using the request as a context
manager).  :class:`PriorityResource` orders its wait queue by a numeric
priority (lower = more important); :class:`PreemptiveResource`
additionally evicts a lower-priority user when a more important request
arrives, delivering a :class:`Preempted` cause through an interrupt.

Hot-path notes: the priority wait queue lazily deletes cancelled
requests (an O(1) flag, skipped at pop) instead of rebuilding and
re-heapifying the heap, the service-order ``queue`` view is computed on
access instead of after every mutation, and :class:`Release` events are
recycled through the kernel's free lists.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, List, Optional

from repro.errors import SimulationError
from repro.sim.events import HEAP_RECYCLABLE, PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


class Request(Event):
    """A pending or granted claim on one unit of a resource's capacity."""

    __slots__ = ("resource", "process", "usage_since")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.kernel)
        self.resource = resource
        self.process: Optional["Process"] = resource.kernel.active_process
        #: Simulation time at which the request was granted.
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the request: release if granted, dequeue otherwise."""
        if self in self.resource.users:
            self.resource.release(self)
        else:
            self.resource._remove_from_queue(self)


class Release(Event):
    """Event fired immediately when a request's slot has been freed."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.kernel)
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue."""

    request_class = Request

    def __init__(self, kernel: "Kernel", capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.kernel = kernel
        self._capacity = capacity
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Requests waiting for a slot, in grant order.
        self._waiting: List[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self._capacity - len(self.users)

    @property
    def queue(self) -> List[Request]:
        """Requests waiting for a slot, in service order."""
        return self._waiting

    def request(self) -> Request:
        """Create (and possibly immediately grant) a request."""
        return self.request_class(self)

    def release(self, request: Request) -> Release:
        """Free the slot held by ``request`` and wake the next waiter."""
        pool = self.kernel._pools.get(Release)
        if pool:
            release = pool.pop()
            release.__init__(self, request)
            return release
        return Release(self, request)

    # -- internals -----------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self._waiting.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.kernel.now
        request.succeed(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold this resource"
            ) from None
        self._wake_next()

    def _wake_next(self) -> None:
        waiting = self._waiting
        while waiting and len(self.users) < self._capacity:
            self._grant(waiting.pop(0))

    def _remove_from_queue(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} used={self.count}/{self._capacity} "
            f"queued={len(self.queue)}>"
        )


class PriorityRequest(Request):
    """A request with a priority (lower value = served earlier)."""

    __slots__ = ("priority", "preempt", "submit_time", "_order_key",
                 "_dequeued")

    def __init__(
        self,
        resource: "PriorityResource",
        priority: float = 0.0,
        preempt: bool = False,
    ) -> None:
        self.priority = priority
        self.preempt = preempt
        self.submit_time = resource.kernel.now
        # Key orders by priority, then FIFO by time and insertion count.
        self._order_key = (priority, self.submit_time, resource._tiebreak())
        self._dequeued = False
        super().__init__(resource)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority.

    Cancelled requests are lazily deleted: :meth:`_remove_from_queue`
    only flags the request, and :meth:`_wake_next` discards flagged
    entries as they surface, so a cancellation is O(1) instead of a
    full heap rebuild.  The public :attr:`queue` view filters them out
    on access.
    """

    request_class = PriorityRequest

    def __init__(self, kernel: "Kernel", capacity: int = 1) -> None:
        super().__init__(kernel, capacity)
        self._queue_heap: List[tuple] = []
        self._counter = 0

    def _tiebreak(self) -> int:
        self._counter += 1
        return self._counter

    @property
    def queue(self) -> List[Request]:
        """Waiting (non-cancelled) requests, in service order."""
        return [
            entry[1]
            for entry in sorted(self._queue_heap)
            if not entry[1]._dequeued and entry[1]._value is PENDING
        ]

    def request(  # type: ignore[override]
        self, priority: float = 0.0, preempt: bool = False
    ) -> PriorityRequest:
        return self.request_class(self, priority=priority, preempt=preempt)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            heapq.heappush(self._queue_heap, (request._order_key, request))

    def _wake_next(self) -> None:
        heap = self._queue_heap
        while heap and len(self.users) < self._capacity:
            _, request = heapq.heappop(heap)
            if request._dequeued or request._value is not PENDING:
                continue  # lazily-deleted (cancelled) entry
            self._grant(request)

    def _remove_from_queue(self, request: Request) -> None:
        request._dequeued = True


class Preempted:
    """Interrupt cause delivered to a process evicted from a resource."""

    __slots__ = ("by", "usage_since", "resource")

    def __init__(
        self,
        by: Optional["Process"],
        usage_since: Optional[float],
        resource: "PreemptiveResource",
    ) -> None:
        #: The process whose request caused the preemption.
        self.by = by
        #: When the evicted request had been granted.
        self.usage_since = usage_since
        self.resource = resource

    def __repr__(self) -> str:
        return f"<Preempted by={self.by!r} usage_since={self.usage_since!r}>"


class PreemptiveResource(PriorityResource):
    """Priority resource that may evict lower-priority users.

    A request with ``preempt=True`` that finds the resource full
    compares itself against the *worst* current user (highest numeric
    priority, most recent grant).  If strictly more important, that user
    is evicted: its request is released and its owning process receives
    an interrupt whose cause is a :class:`Preempted` instance.
    """

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if request.preempt and len(self.users) >= self._capacity:
            victim = max(
                self.users,
                key=lambda user: (
                    user.priority if isinstance(user, PriorityRequest) else 0.0,
                    user.usage_since or 0.0,
                ),
            )
            victim_priority = (
                victim.priority if isinstance(victim, PriorityRequest) else 0.0
            )
            if request.priority < victim_priority:
                self.users.remove(victim)
                if victim.process is not None and victim.process.is_alive:
                    victim.process.interrupt(
                        Preempted(
                            by=request.process,
                            usage_since=victim.usage_since,
                            resource=self,
                        )
                    )
        super()._do_request(request)


def _clear_release(event: Event) -> None:
    event.request = None
    event._value = None


HEAP_RECYCLABLE[Release] = _clear_release
