"""Object stores: producer/consumer queues in simulated time.

A :class:`Store` holds arbitrary items up to an optional capacity.
``put`` blocks while the store is full; ``get`` blocks while it is
empty.  :class:`FilterStore` lets consumers wait for an item matching a
predicate, and :class:`PriorityStore` serves the smallest item first —
both are the building blocks for scheduler queues and device inboxes in
the cluster model.

Hot-path notes: plain :class:`StorePut`/:class:`StoreGet` events are
recycled through the kernel's free lists once provably unobservable
(:class:`FilterStoreGet` is not pooled — its predicate closure may pin
arbitrary state and the filter path is not hot).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import HEAP_RECYCLABLE, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.kernel)
        self.item = item
        self.store = store
        store._put_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw a not-yet-accepted put."""
        try:
            self.store._put_waiters.remove(self)
        except ValueError:
            pass


class StoreGet(Event):
    """Pending retrieval of an item from a store."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.kernel)
        self.store = store
        store._get_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw a not-yet-served get."""
        try:
            self.store._get_waiters.remove(self)
        except ValueError:
            pass


class FilterStoreGet(StoreGet):
    """Pending retrieval of an item satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(
        self, store: "FilterStore", predicate: Callable[[Any], bool]
    ) -> None:
        self.predicate = predicate
        super().__init__(store)


class Store:
    """FIFO object store with optional capacity."""

    def __init__(
        self, kernel: "Kernel", capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.kernel = kernel
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires once accepted."""
        pool = self.kernel._pools.get(StorePut)
        if pool:
            put = pool.pop()
            put.__init__(self, item)
            return put
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the next item; the event fires with the item."""
        pool = self.kernel._pools.get(StoreGet)
        if pool:
            get = pool.pop()
            get.__init__(self)
            return get
        return StoreGet(self)

    @property
    def size(self) -> int:
        """Number of items currently held."""
        return len(self.items)

    # -- internals -----------------------------------------------------------

    def _dispatch(self) -> None:
        """Match puts against free capacity and gets against items."""
        progress = True
        while progress:
            progress = False
            # Accept queued puts while capacity allows.
            while self._put_waiters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                put = self._put_waiters.pop(0)
                self._accept(put)
                progress = True
            # Serve queued gets while items match.
            index = 0
            while index < len(self._get_waiters):
                get = self._get_waiters[index]
                item_index = self._match(get)
                if item_index is None:
                    index += 1
                    continue
                self._get_waiters.pop(index)
                item = self.items.pop(item_index)
                get.succeed(item)
                progress = True

    def _accept(self, put: StorePut) -> None:
        self.items.append(put.item)
        put.succeed()

    def _match(self, get: StoreGet) -> Optional[int]:
        """Index of the item that should serve ``get``, or ``None``."""
        if not self.items:
            return None
        return 0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} items={len(self.items)} "
            f"puts={len(self._put_waiters)} gets={len(self._get_waiters)}>"
        )


class FilterStore(Store):
    """Store whose consumers may wait for items matching a predicate."""

    def get(  # type: ignore[override]
        self, predicate: Callable[[Any], bool] = lambda item: True
    ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)

    def _match(self, get: StoreGet) -> Optional[int]:
        predicate = getattr(get, "predicate", lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None


class PriorityItem:
    """Wrapper pairing a priority with an arbitrary (unorderable) item."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store that always serves its smallest item first."""

    def _accept(self, put: StorePut) -> None:
        heapq.heappush(self.items, put.item)
        put.succeed()

    def _match(self, get: StoreGet) -> Optional[int]:
        if not self.items:
            return None
        return 0

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._put_waiters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                self._accept(self._put_waiters.pop(0))
                progress = True
            while self._get_waiters and self.items:
                get = self._get_waiters.pop(0)
                get.succeed(heapq.heappop(self.items))
                progress = True


def _clear_store_put(event: Event) -> None:
    event.item = None
    event.store = None
    event._value = None


def _clear_store_get(event: Event) -> None:
    event.store = None
    event._value = None


HEAP_RECYCLABLE[StorePut] = _clear_store_put
HEAP_RECYCLABLE[StoreGet] = _clear_store_get
