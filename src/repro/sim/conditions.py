"""Composite events: wait for *all* or *any* of a set of events.

``AllOf`` fires once every constituent event has fired; ``AnyOf`` fires
as soon as the first one does.  Both fire with a :class:`ConditionValue`
mapping each *triggered* constituent event to its value, which lets the
waiting process inspect exactly which events completed.

A failure in any constituent event propagates to the condition (and is
thereby delivered to the waiting process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List

from repro.errors import SimulationError
from repro.sim.events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class ConditionValue:
    """Ordered mapping of triggered events to their values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> Dict[Event, Any]:
        """Return a plain ``dict`` of event → value."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Base class for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("_events", "_processed_count")

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:
        super().__init__(kernel)
        for event in events:
            if event.kernel is not kernel:
                raise SimulationError(
                    "all events of a condition must share one kernel"
                )
        self._events = events
        self._processed_count = 0
        for event in events:
            if event.callbacks is None:
                # Already processed: account for it immediately.
                self._count_event(event)
            else:
                event.callbacks.append(self._on_fire)
        self._maybe_trigger()

    # -- hooks implemented by subclasses ------------------------------------

    def _satisfied(self) -> bool:
        raise NotImplementedError

    # -- internals -----------------------------------------------------------

    def _count_event(self, event: Event) -> None:
        if not event._ok:
            if self._value is PENDING:
                event._defused = True
                self.fail(event._value)
            return
        self._processed_count += 1

    def _on_fire(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count_event(event)
        self._maybe_trigger()

    def _maybe_trigger(self) -> None:
        if self._value is PENDING and self._satisfied():
            value = ConditionValue()
            value.events = [
                event for event in self._events if event.processed
            ]
            self.succeed(value)

    @property
    def events(self) -> List[Event]:
        """The constituent events, in construction order."""
        return list(self._events)


class AllOf(Condition):
    """Fires once *every* constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._processed_count >= len(self._events)


class AnyOf(Condition):
    """Fires once *any* constituent event has fired.

    An ``AnyOf`` over zero events fires immediately (vacuous truth
    mirrors SimPy semantics for ``AllOf``; for ``AnyOf`` we also fire
    immediately so empty fan-ins never deadlock).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        if not self._events:
            return True
        return self._processed_count >= 1
