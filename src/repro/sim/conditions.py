"""Composite events: wait for *all* or *any* of a set of events.

``AllOf`` fires once every constituent event has fired; ``AnyOf`` fires
as soon as the first one does.  Both fire with a :class:`ConditionValue`
mapping each *triggered* constituent event to its value, which lets the
waiting process inspect exactly which events completed.

A failure in any constituent event propagates to the condition (and is
thereby delivered to the waiting process).

Hot-path notes: conditions and their :class:`ConditionValue` results
are recycled through the kernel's free lists (a condition is only
recycled when the kernel's refcount check proves no user code can still
observe it; its value is only recycled when additionally nothing but
the condition referenced it), and triggering pushes directly onto the
kernel heap like ``Event.succeed``.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Dict, Iterator, List

from repro.errors import SimulationError
from repro.sim.events import (
    HEAP_RECYCLABLE,
    PENDING,
    POOL_CAP,
    Event,
    _NORMAL_KEY,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

try:
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - CPython always has it
    _getrefcount = None


class ConditionValue:
    """Ordered mapping of triggered events to their values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> Dict[Event, Any]:
        """Return a plain ``dict`` of event → value."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Base class for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("_events", "_processed_count")

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:
        self.kernel = kernel
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False
        for event in events:
            if event.kernel is not kernel:
                raise SimulationError(
                    "all events of a condition must share one kernel"
                )
        self._events = events
        self._processed_count = 0
        on_fire = self._on_fire
        count_event = self._count_event
        for event in events:
            if event.callbacks is None:
                # Already processed: account for it immediately.
                count_event(event)
            else:
                event.callbacks.append(on_fire)
        self._maybe_trigger()

    # -- hooks implemented by subclasses ------------------------------------

    def _satisfied(self) -> bool:
        raise NotImplementedError

    # -- internals -----------------------------------------------------------

    def _count_event(self, event: Event) -> None:
        if not event._ok:
            if self._value is PENDING:
                event._defused = True
                self.fail(event._value)
            return
        self._processed_count += 1

    def _on_fire(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count_event(event)
        self._maybe_trigger()

    def _maybe_trigger(self) -> None:
        if self._value is PENDING and self._satisfied():
            kernel = self.kernel
            pool = kernel._pools.get(ConditionValue)
            if pool:
                value = pool.pop()
            else:
                value = ConditionValue.__new__(ConditionValue)
            value.events = [
                event for event in self._events if event.callbacks is None
            ]
            # Fused succeed: the condition was pending by construction.
            self._ok = True
            self._value = value
            kernel._sequence = sequence = kernel._sequence + 1
            kernel._live += 1
            heappush(kernel._heap, (kernel._now, _NORMAL_KEY | sequence, self))

    @property
    def events(self) -> List[Event]:
        """The constituent events, in construction order."""
        return list(self._events)


class AllOf(Condition):
    """Fires once *every* constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._processed_count >= len(self._events)


class AnyOf(Condition):
    """Fires once *any* constituent event has fired.

    An ``AnyOf`` over zero events fires immediately (vacuous truth
    mirrors SimPy semantics for ``AllOf``; for ``AnyOf`` we also fire
    immediately so empty fan-ins never deadlock).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        if not self._events:
            return True
        return self._processed_count >= 1


def _clear_condition(event: Event) -> None:
    # Drop references to the constituent events; if nothing but this
    # condition referenced its ConditionValue, recycle that too.
    event._events = ()
    value = event._value
    event._value = None
    if type(value) is ConditionValue and _getrefcount(value) == 2:
        pools = event.kernel._pools
        pool = pools.get(ConditionValue)
        if pool is None:
            pool = pools[ConditionValue] = []
        if len(pool) < POOL_CAP:
            value.events = ()
            pool.append(value)


HEAP_RECYCLABLE[AllOf] = _clear_condition
HEAP_RECYCLABLE[AnyOf] = _clear_condition
