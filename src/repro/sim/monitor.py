"""Time-weighted observation of simulation state.

:class:`TimeWeightedValue` tracks a piecewise-constant quantity (e.g.
"busy nodes") and integrates it over simulated time, which is what
utilisation metrics need.  :class:`SampleSeries` collects point samples
(e.g. per-job wait times) with summary statistics.  Both are pure
bookkeeping — no kernel interaction beyond reading the clock.

Hot-path notes: sample series append into a compact ``array('d')`` and
fold summary statistics lazily (sequentially, in arrival order, so the
folded mean/variance are bit-identical to eager per-record folding),
and the time-weighted integrator skips accumulation for
same-timestamp updates.  Both classes are ``__slots__``-compacted.
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class RunningStats:
    """Constant-memory accumulator of count/total/mean/variance.

    Welford's online algorithm, with the Chan et al. pairwise rule in
    :meth:`merge` so per-shard accumulators from a parallel sweep can be
    combined without revisiting samples.  Backs the O(1) summary
    properties of :class:`SampleSeries` and the sweep engine's
    per-point timing summaries (re-exported as
    ``repro.metrics.stats.RunningStats``).
    """

    __slots__ = ("count", "total", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the summary (O(1))."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator's summary into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        count = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += (
            other._m2 + delta * delta * self.count * other.count / count
        )
        self.mean += delta * other.count / count
        self.total += other.total
        self.count = count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return max(self._m2, 0.0) / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"<RunningStats n={self.count} mean={self.mean:.4g} "
            f"stdev={self.stdev:.4g}>"
        )


class TimeWeightedValue:
    """A piecewise-constant value integrated over simulated time.

    History recording is opt-in (``record_history=True``): the busy-node
    and device counters live on every allocation hot path, and the
    integral needs only the running sum, so the default keeps
    :meth:`set` allocation-free instead of growing an unread step list
    for the whole simulation.
    """

    __slots__ = ("kernel", "_value", "_start_time", "_last_change",
                 "_integral", "history")

    def __init__(
        self,
        kernel: "Kernel",
        initial: float = 0.0,
        record_history: bool = False,
    ) -> None:
        self.kernel = kernel
        self._value = float(initial)
        self._start_time = kernel.now
        self._last_change = kernel.now
        self._integral = 0.0
        #: Full (time, new_value) step history; ``None`` unless
        #: ``record_history`` was requested at construction.
        self.history: Optional[List[Tuple[float, float]]] = (
            [(kernel.now, float(initial))] if record_history else None
        )

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Step the tracked quantity to ``value`` at the current time."""
        now = self.kernel._now
        if now != self._last_change:
            self._integral += self._value * (now - self._last_change)
            self._last_change = now
        self._value = float(value)
        if self.history is not None:
            self.history.append((now, self._value))

    def add(self, delta: float) -> None:
        """Increment the tracked quantity by ``delta``."""
        self.set(self._value + delta)

    def integral(self, until: Optional[float] = None) -> float:
        """Time integral of the value from creation until ``until`` (or now)."""
        end = self.kernel.now if until is None else until
        if end < self._last_change:
            raise SimulationError("integral endpoint precedes last change")
        return self._integral + self._value * (end - self._last_change)

    def time_average(self, until: Optional[float] = None) -> float:
        """Mean value over the observation window (0 if the window is empty)."""
        end = self.kernel.now if until is None else until
        span = end - self._start_time
        if span <= 0:
            return self._value
        return self.integral(until=end) / span

    def __repr__(self) -> str:
        return f"<TimeWeightedValue value={self._value!r}>"


class SampleSeries:
    """Point samples with amortised summary statistics.

    Observations append into a compact ``array('d')`` — a C-level
    append, no per-sample Python arithmetic.  Summary properties
    (``total``/``mean``/``stdev``/extremes) fold outstanding samples
    into a :class:`RunningStats` accumulator on first access, strictly
    in arrival order, so the folded results are bit-identical to the
    previous eager per-record folding.  The raw samples are kept for
    order statistics (:meth:`percentile`).
    """

    __slots__ = ("name", "_samples", "_stats", "_folded")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples = array("d")
        self._stats = RunningStats()
        #: Number of leading samples already folded into ``_stats``.
        self._folded = 0

    def record(self, value: float) -> None:
        """Append one observation (O(1), no stats arithmetic)."""
        self._samples.append(value)

    @property
    def samples(self) -> List[float]:
        """The recorded observations, in arrival order, as a list."""
        return list(self._samples)

    def _fold(self) -> RunningStats:
        """Fold any outstanding samples into the running summary."""
        samples = self._samples
        folded = self._folded
        if folded < len(samples):
            add = self._stats.add
            for value in samples[folded:]:
                add(value)
            self._folded = len(samples)
        return self._stats

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return self._fold().total

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._fold().mean

    @property
    def maximum(self) -> float:
        return self._fold().maximum if self._samples else 0.0

    @property
    def minimum(self) -> float:
        return self._fold().minimum if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the samples, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile out of range: {q!r}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        # a + f*(b-a) is exact when a == b, unlike the two-product form.
        return ordered[low] + fraction * (ordered[high] - ordered[low])

    @property
    def stdev(self) -> float:
        """Population standard deviation (0 for fewer than two samples)."""
        return self._fold().stdev

    def __repr__(self) -> str:
        return (
            f"<SampleSeries {self.name!r} n={self.count} mean={self.mean:.4g}>"
        )
