"""Time-weighted observation of simulation state.

:class:`TimeWeightedValue` tracks a piecewise-constant quantity (e.g.
"busy nodes") and integrates it over simulated time, which is what
utilisation metrics need.  :class:`SampleSeries` collects point samples
(e.g. per-job wait times) with summary statistics.  Both are pure
bookkeeping — no kernel interaction beyond reading the clock.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class TimeWeightedValue:
    """A piecewise-constant value integrated over simulated time."""

    def __init__(self, kernel: "Kernel", initial: float = 0.0) -> None:
        self.kernel = kernel
        self._value = float(initial)
        self._start_time = kernel.now
        self._last_change = kernel.now
        self._integral = 0.0
        #: Optional full history of (time, new_value) steps.
        self.history: List[Tuple[float, float]] = [(kernel.now, initial)]

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Step the tracked quantity to ``value`` at the current time."""
        now = self.kernel.now
        self._integral += self._value * (now - self._last_change)
        self._last_change = now
        self._value = float(value)
        self.history.append((now, self._value))

    def add(self, delta: float) -> None:
        """Increment the tracked quantity by ``delta``."""
        self.set(self._value + delta)

    def integral(self, until: Optional[float] = None) -> float:
        """Time integral of the value from creation until ``until`` (or now)."""
        end = self.kernel.now if until is None else until
        if end < self._last_change:
            raise SimulationError("integral endpoint precedes last change")
        return self._integral + self._value * (end - self._last_change)

    def time_average(self, until: Optional[float] = None) -> float:
        """Mean value over the observation window (0 if the window is empty)."""
        end = self.kernel.now if until is None else until
        span = end - self._start_time
        if span <= 0:
            return self._value
        return self.integral(until=end) / span

    def __repr__(self) -> str:
        return f"<TimeWeightedValue value={self._value!r}>"


class SampleSeries:
    """Point samples with incremental summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        """Append one observation."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return math.fsum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self.total / len(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the samples, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile out of range: {q!r}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        # a + f*(b-a) is exact when a == b, unlike the two-product form.
        return ordered[low] + fraction * (ordered[high] - ordered[low])

    @property
    def stdev(self) -> float:
        """Population standard deviation (0 for fewer than two samples)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        variance = math.fsum((x - mean) ** 2 for x in self.samples) / n
        return math.sqrt(variance)

    def __repr__(self) -> str:
        return (
            f"<SampleSeries {self.name!r} n={self.count} mean={self.mean:.4g}>"
        )
