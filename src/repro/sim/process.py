"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator *yields*
events to suspend; the kernel resumes it with the event's value (or
throws the event's exception into it) once the event is processed.  A
process is itself an event that fires when the generator terminates,
which makes ``yield other_process`` a natural join operation.

Hot-path notes: the generator's ``send``/``throw`` bound methods are
cached at creation so every resume skips two attribute lookups, process
termination pushes directly onto the kernel heap (fused, like
``Event.succeed``), and process shells are recycled through the
kernel's free lists once provably unobservable.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import (
    HEAP_RECYCLABLE,
    PENDING,
    URGENT,
    Event,
    Initialize,
    Interruption,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """An active component of the simulation, driven by a generator.

    Create processes through :meth:`repro.sim.kernel.Kernel.process`
    rather than instantiating this class directly.
    """

    __slots__ = ("_generator", "_target", "name", "_send", "_throw")

    def __init__(
        self,
        kernel: "Kernel",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.kernel = kernel
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (``None``
        #: before the first resume and after termination).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        pool = kernel._pools.get(Initialize)
        if pool:
            initialize = pool.pop()
            initialize.__init__(kernel, self)
        else:
            Initialize(kernel, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`~repro.sim.events.Interrupt` into the process.

        The interrupt is delivered urgently at the current simulation
        time.  Interrupting a terminated process is an error.
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        kernel = self.kernel
        kernel._active_process = self
        send = self._send
        while True:
            if event._ok:
                try:
                    next_target = send(event._value)
                except StopIteration as stop:
                    self._terminate(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    self._terminate(ok=False, value=exc)
                    break
            else:
                # The event failed: throw its exception into the
                # generator.  Mark it defused -- the process consumed it.
                event._defused = True
                exception = event._value
                try:
                    next_target = self._throw(exception)
                except StopIteration as stop:
                    self._terminate(ok=True, value=stop.value)
                    break
                except BaseException as exc:
                    # Distinguish "the generator did not catch the
                    # exception" (propagate silently as a failure) from a
                    # new error raised by the generator.
                    self._terminate(ok=False, value=exc)
                    break

            if not isinstance(next_target, Event):
                self._terminate(
                    ok=False,
                    value=SimulationError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_target!r}"
                    ),
                )
                break

            callbacks = next_target.callbacks
            if callbacks is not None:
                # Not yet processed: wait for it.
                callbacks.append(self._resume)
                self._target = next_target
                break

            # The yielded event was already processed; continue
            # immediately with its value within this same resume cycle.
            self._target = next_target
            event = next_target

        kernel._active_process = None

    def _terminate(self, ok: bool, value: Any) -> None:
        """Record the generator outcome and fire this process-as-event."""
        self._target = None
        self._ok = ok
        self._value = value
        kernel = self.kernel
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(kernel._heap, (kernel._now, sequence, self))  # URGENT

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


def _clear_process(event: Event) -> None:
    event._generator = None
    event._send = None
    event._throw = None
    event._target = None
    event._value = None


HEAP_RECYCLABLE[Process] = _clear_process
