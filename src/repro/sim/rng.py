"""Deterministic, named random-number streams.

Stochastic components (arrival processes, runtime distributions, noise
on quantum job durations) each draw from their *own* stream derived
from a single root seed and a stable name.  Adding a new random
component therefore never perturbs the draws of existing ones — the
standard trick for reproducible discrete-event simulation studies.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Map ``(root_seed, name)`` to a stable 64-bit child seed.

    The derivation is pure (sha256 over the textual key), so any two
    processes — or two runs years apart — agree on the child seed.  It
    is the one primitive behind both named streams and the sweep
    engine's per-grid-point seeds.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


#: Backwards-compatible alias (pre-sweep-engine name).
_derive_seed = derive_seed


class RandomStreams:
    """Factory of independent named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> runtimes = streams.stream("runtimes")
    >>> float(arrivals.random()) != float(runtimes.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (so consumption is shared), while distinct names yield
        statistically independent streams.
        """
        if name not in self._streams:
            child_seed = _derive_seed(self.seed, name)
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a whole child factory, e.g. one per experiment replication."""
        return RandomStreams(_derive_seed(self.seed, f"spawn:{name}"))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed!r})"
