"""Discrete-event simulation kernel (written from scratch for repro).

Public surface::

    from repro.sim import Kernel, Interrupt
    kernel = Kernel()

    def ping(kernel):
        yield kernel.timeout(1.0)
        return "pong"

    proc = kernel.process(ping(kernel))
    kernel.run()
    assert proc.value == "pong"
"""

from repro.sim.conditions import AllOf, AnyOf, Condition, ConditionValue
from repro.sim.container import Container
from repro.sim.events import (
    NORMAL,
    URGENT,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.kernel import EmptySchedule, Kernel
from repro.sim.monitor import SampleSeries, TimeWeightedValue
from repro.sim.process import Process
from repro.sim.resources import (
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from repro.sim.rng import RandomStreams
from repro.sim.store import (
    FilterStore,
    FilterStoreGet,
    PriorityItem,
    PriorityStore,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "EmptySchedule",
    "Event",
    "FilterStore",
    "FilterStoreGet",
    "Interrupt",
    "Kernel",
    "NORMAL",
    "Preempted",
    "PreemptiveResource",
    "PriorityItem",
    "PriorityRequest",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "SampleSeries",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TimeWeightedValue",
    "URGENT",
]
