"""Core event primitives for the discrete-event simulation kernel.

The kernel is generator-based in the style popularised by SimPy, but
implemented from scratch for this project.  An :class:`Event` is a
one-shot occurrence: it starts *pending*, becomes *triggered* once a
value (or an exception) is attached and it is placed on the kernel's
event heap, and becomes *processed* once the kernel has popped it and
run its callbacks.  Processes (see :mod:`repro.sim.process`) suspend by
yielding events and are resumed through those callbacks.

Hot-path design notes (see docs/architecture.md, "Kernel fast path"):

- Every event class is ``__slots__``-compacted and triggering is *fused*
  with scheduling: ``succeed``/``fail``/``trigger`` push directly onto
  the kernel's heap instead of going through a ``Kernel.schedule`` call.
- Heap entries are ``(time, key, event)`` where ``key`` packs
  ``(priority, sequence)`` into a single int (``priority << 56 | seq``),
  so tie-breaking costs one integer comparison instead of two tuple
  elements.  The packed order is identical to the old
  ``(time, priority, sequence)`` tuples, which keeps event ordering —
  and therefore every simulation output — byte-identical.
- Short-lived internal events (:class:`Timeout`, :class:`Initialize`
  and friends) are recycled through per-kernel free lists: when the
  kernel finishes processing an event whose refcount proves no user
  code can ever observe it again, the instance is cleared and parked
  for reuse.  The :data:`HEAP_RECYCLABLE` registry maps each poolable
  class to the function that clears its references before pooling.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Kernel

#: Sentinel stored in :attr:`Event._value` while the event is pending.
PENDING = object()

#: Scheduling priority for events that must run before ordinary events
#: scheduled at the same timestamp (e.g. interrupts, resource releases).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1

#: Bits reserved for the sequence number inside a packed heap key.
#: ``priority << KEY_SHIFT | sequence`` orders exactly like the tuple
#: ``(priority, sequence)`` for any sequence below 2**56 — far beyond
#: the event count of any feasible simulation.
KEY_SHIFT = 56

_NORMAL_KEY = NORMAL << KEY_SHIFT

#: Registry of heap-poolable event classes: exact class -> function
#: clearing the instance's external references before it is parked on a
#: free list.  Only classes registered here are ever recycled, and only
#: when the kernel's refcount check proves the instance unreachable.
HEAP_RECYCLABLE: Dict[type, Callable[["Event"], None]] = {}

#: Cap on each per-kernel free list so pathological workloads cannot
#: pin unbounded memory in the pools.
POOL_CAP = 1024


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    kernel:
        The kernel this event belongs to.  All times and orderings are
        relative to this kernel's clock.
    """

    __slots__ = ("kernel", "callbacks", "_value", "_ok", "_defused",
                 "_cancelled")

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: Callables invoked (with this event) when the event is
        #: processed.  ``None`` once processing has happened.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether a value has been attached and the event scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the kernel already ran this event's callbacks."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """Whether the scheduled event was cancelled before processing."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or its exception)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure was consumed by some process."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so calls can be chained or returned.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        kernel = self.kernel
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(kernel._heap, (kernel._now, _NORMAL_KEY | sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception will be thrown into every process waiting on this
        event.  If no process consumes it, the kernel re-raises it when
        the event is processed.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        kernel = self.kernel
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(kernel._heap, (kernel._now, _NORMAL_KEY | sequence, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event and schedule it.

        Used as a callback to chain events together.
        """
        if event._value is PENDING:
            raise SimulationError("cannot propagate a pending event")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        kernel = self.kernel
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(kernel._heap, (kernel._now, _NORMAL_KEY | sequence, self))

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay in simulated time."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.kernel = kernel
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._defused = False
        self._cancelled = False
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(
            kernel._heap,
            (kernel._now + delay, _NORMAL_KEY | sequence, self),
        )

    def cancel(self) -> None:
        """Withdraw the timeout from the schedule before it fires.

        The heap entry is *lazily deleted*: it stays on the heap but is
        skipped (without running callbacks or advancing the clock) when
        it reaches the front.  ``peek``/``queued_event_count`` ignore
        cancelled entries, so introspection stays truthful.
        """
        self.kernel.cancel(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a process at its creation instant."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", process: Any) -> None:
        self.kernel = kernel
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        self._cancelled = False
        kernel._sequence = sequence = kernel._sequence + 1
        kernel._live += 1
        heappush(kernel._heap, (kernel._now, sequence, self))  # URGENT


class Interruption(Event):
    """Internal event that delivers an :class:`Interrupt` to a process.

    Scheduled urgently so an interrupt issued at time *t* is delivered
    before ordinary events of time *t* are processed.
    """

    __slots__ = ("process",)

    def __init__(self, process: Any, cause: Any) -> None:
        super().__init__(process.kernel)
        if process.processed:
            raise SimulationError(
                f"cannot interrupt {process!r}: it has already terminated"
            )
        if process is self.kernel.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True  # the throw into the generator consumes it
        self.callbacks.append(self._deliver)
        self.kernel.schedule(self, priority=URGENT)

    def _deliver(self, event: "Event") -> None:
        process = self.process
        if process.processed:
            # The process terminated between scheduling and delivery of
            # the interrupt; nothing is left to interrupt.
            return
        # Detach the process from whatever it is currently waiting on so
        # that the pending event does not resume it a second time.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


# -- free-list recycling ----------------------------------------------------


def _clear_timeout(event: Event) -> None:
    event._value = None


def _clear_initialize(event: Event) -> None:
    event._value = None


HEAP_RECYCLABLE[Timeout] = _clear_timeout
HEAP_RECYCLABLE[Initialize] = _clear_initialize
