"""Job model: specifications, runtime state, and the execution context.

A :class:`JobSpec` mirrors what a SLURM batch script declares: one or
more *components* (a heterogeneous job — the paper's Listing 1 — has
two: classical nodes and a quantum gres), a walltime per component, a
user/account for accounting, and the *work* the job performs once its
resources are granted.

Work is either a fixed duration (classic rigid batch job) or a
generator function receiving a :class:`JobContext`, which is how the
strategy layer injects hybrid application behaviour (classical phases,
quantum kernel submissions, malleable resizes) into allocated jobs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional

from repro.cluster.allocation import Allocation
from repro.errors import ConfigurationError, JobRejectedError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.scheduler import BatchScheduler
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

_job_counter = itertools.count(1)


class JobState(enum.Enum):
    """Lifecycle states, matching SLURM's main states."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    FAILED = "failed"
    NODE_FAIL = "node_fail"

    @property
    def is_terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass(frozen=True)
class JobComponent:
    """One resource bundle of a (possibly heterogeneous) job.

    Equivalent to one ``#SBATCH`` block of Listing 1: partition, node
    count, walltime and gres request.
    """

    partition: str
    nodes: int
    walltime: float
    gres: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("component node count must be positive")
        if self.walltime <= 0:
            raise ConfigurationError("component walltime must be positive")
        for gres_type, count in self.gres.items():
            if count <= 0:
                raise ConfigurationError(
                    f"gres {gres_type!r} count must be positive"
                )


WorkFunction = Callable[["JobContext"], Generator[Event, Any, Any]]


@dataclass
class JobSpec:
    """Everything a user submits: resources + work + identity.

    Exactly one of ``duration`` or ``work`` must be provided.
    ``duration`` models a rigid job that simply occupies its allocation;
    ``work`` is a generator function driving arbitrary in-job behaviour.
    """

    name: str
    components: List[JobComponent]
    user: str = "user"
    account: str = "default"
    duration: Optional[float] = None
    work: Optional[WorkFunction] = None
    qos_priority: float = 0.0
    #: Requeue the job if a node under it fails.
    requeue_on_failure: bool = False
    #: Job ids this job depends on (SLURM ``--dependency`` semantics).
    #: ``afterok`` ids must COMPLETE successfully before this job becomes
    #: eligible; ``afterany`` ids merely need to reach a terminal state.
    after_ok: List[str] = field(default_factory=list)
    after_any: List[str] = field(default_factory=list)
    #: Arbitrary annotations carried through to metrics (strategy name...).
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError(f"job {self.name!r} has no components")
        if (self.duration is None) == (self.work is None):
            raise ConfigurationError(
                f"job {self.name!r}: exactly one of duration/work required"
            )
        if self.duration is not None and self.duration < 0:
            raise ConfigurationError("duration must be >= 0")

    @property
    def is_heterogeneous(self) -> bool:
        """True for multi-component (SLURM ``hetjob``) submissions."""
        return len(self.components) > 1

    @property
    def walltime_limit(self) -> float:
        """The job-level limit: the tightest component walltime.

        SLURM terminates the whole heterogeneous job when any component
        exceeds its limit, so the minimum governs the job's lifetime.
        """
        return min(component.walltime for component in self.components)

    def total_nodes(self) -> int:
        return sum(component.nodes for component in self.components)


class Job:
    """Runtime record of a submitted job.

    Fleet-sized workloads create many thousands of these, so the class
    is slotted; ``_worker`` is the scheduler-owned handle to the
    process driving the job's work.
    """

    __slots__ = (
        "spec",
        "id",
        "kernel",
        "state",
        "submit_time",
        "start_time",
        "end_time",
        "allocations",
        "started",
        "finished",
        "priority",
        "requeue_count",
        "_worker",
    )

    def __init__(self, spec: JobSpec, kernel: "Kernel") -> None:
        self.spec = spec
        self.id = f"job-{next(_job_counter)}"
        self.kernel = kernel
        self.state = JobState.PENDING
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.allocations: List[Allocation] = []
        #: Fires (with the job) when the job starts running.
        self.started: Event = kernel.event()
        #: Fires (with the final state) when the job reaches a terminal state.
        self.finished: Event = kernel.event()
        #: Set by the scheduler: computed priority at last scheduling pass.
        self.priority: float = 0.0
        #: Number of times the job was requeued after node failures.
        self.requeue_count = 0
        #: Process driving the job's work while running (scheduler-owned).
        self._worker: Optional["Process"] = None

    # -- derived metrics -----------------------------------------------------------

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (submit -> start), if the job has started."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        end = self.end_time if self.end_time is not None else self.kernel.now
        return end - self.start_time

    @property
    def turnaround(self) -> Optional[float]:
        """Response time (submit -> terminal), if finished."""
        if self.submit_time is None or self.end_time is None:
            return None
        return self.end_time - self.submit_time

    def slowdown(self, minimum_runtime: float = 10.0) -> Optional[float]:
        """Bounded slowdown with runtime floor ``minimum_runtime``."""
        if self.turnaround is None or self.run_time is None:
            return None
        denominator = max(self.run_time, minimum_runtime)
        return max(1.0, self.turnaround / denominator)

    def allocation_for(self, partition: str) -> Allocation:
        """The job's allocation in ``partition`` (for hetjob components)."""
        for allocation in self.allocations:
            if allocation.partition_name == partition:
                return allocation
        raise JobRejectedError(
            f"job {self.id} holds no allocation in partition {partition!r}"
        )

    def __repr__(self) -> str:
        return f"<Job {self.id} {self.spec.name!r} {self.state.value}>"


class JobContext:
    """Handle given to a job's work function while it runs.

    Provides the kernel clock, the granted allocations (including any
    gres-bound device objects, e.g. QPUs), and — for malleable jobs —
    the resize API of the owning scheduler.
    """

    def __init__(
        self, kernel: "Kernel", job: Job, scheduler: "BatchScheduler"
    ) -> None:
        self.kernel = kernel
        self.job = job
        self.scheduler = scheduler

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def allocations(self) -> List[Allocation]:
        return self.job.allocations

    def timeout(self, delay: float) -> Event:
        """Sleep for ``delay`` seconds of simulated time."""
        return self.kernel.timeout(delay)

    def nodes_in(self, partition: str) -> int:
        """Node count currently held in ``partition``."""
        return self.job.allocation_for(partition).node_count

    def gres_devices(self, gres_type: str = "qpu") -> List[Any]:
        """Device objects bound to the granted gres units."""
        devices: List[Any] = []
        for allocation in self.job.allocations:
            devices.extend(allocation.gres_devices(gres_type))
        return devices

    def first_qpu(self) -> Any:
        """Convenience accessor for the single-QPU case (Listing 1)."""
        devices = self.gres_devices("qpu")
        if not devices:
            raise JobRejectedError(
                f"job {self.job.id} holds no qpu gres device"
            )
        return devices[0]

    # -- malleability (delegates to the scheduler) ------------------------------

    def shrink(self, partition: str, release_count: int) -> List[str]:
        """Release ``release_count`` nodes from the job (immediate)."""
        return self.scheduler.shrink_job(self.job, partition, release_count)

    def grow(self, partition: str, count: int) -> Event:
        """Request ``count`` extra nodes; event fires when granted."""
        return self.scheduler.request_grow(self.job, partition, count)

    def attach_component(self, component: "JobComponent") -> Event:
        """Request a whole extra component (e.g. a QPU) mid-run.

        The event fires with the granted
        :class:`~repro.cluster.allocation.Allocation`.
        """
        return self.scheduler.request_component(self.job, component)

    def detach_component(self, partition: str) -> None:
        """Release the job's allocation in ``partition`` mid-run."""
        self.scheduler.release_component(self.job, partition)
