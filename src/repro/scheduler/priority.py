"""Multifactor job priority, modelled on SLURM's priority/multifactor.

``priority = w_age * age_factor + w_size * size_factor
           + w_fairshare * fairshare_factor + w_qos * qos + w_partition``

Factors are normalised to [0, 1]; weights set their relative influence.
A pure-FIFO queue is the special case ``age_weight > 0`` with all other
weights zero (ties broken by submission order in the scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.scheduler.accounting import AccountingLedger
from repro.scheduler.job import Job


@dataclass
class PriorityWeights:
    """Relative weights of the multifactor terms."""

    age: float = 1000.0
    size: float = 0.0
    fairshare: float = 0.0
    qos: float = 1.0

    def __post_init__(self) -> None:
        if min(self.age, self.size, self.fairshare, self.qos) < 0:
            raise ConfigurationError("priority weights must be >= 0")


class MultifactorPriority:
    """Computes job priorities from age, size, fair-share and QOS.

    Parameters
    ----------
    weights:
        Term weights; default is age-dominated (FIFO-like).
    max_age:
        Age (seconds) at which the age factor saturates at 1.0.
    total_nodes:
        Cluster size used to normalise the size factor; favouring large
        jobs (SLURM's default) counters starvation under backfill.
    ledger:
        Accounting ledger used for the fair-share term (optional).
    """

    def __init__(
        self,
        weights: Optional[PriorityWeights] = None,
        max_age: float = 7 * 24 * 3600.0,
        total_nodes: int = 1,
        ledger: Optional[AccountingLedger] = None,
    ) -> None:
        if max_age <= 0:
            raise ConfigurationError("max_age must be positive")
        if total_nodes <= 0:
            raise ConfigurationError("total_nodes must be positive")
        self.weights = weights or PriorityWeights()
        self.max_age = max_age
        self.total_nodes = total_nodes
        self.ledger = ledger

    def compute(self, job: Job, now: float) -> float:
        """Priority of ``job`` at time ``now`` (higher runs earlier)."""
        weights = self.weights
        submit = job.submit_time if job.submit_time is not None else now
        age_factor = min((now - submit) / self.max_age, 1.0)
        size_factor = min(job.spec.total_nodes() / self.total_nodes, 1.0)
        if self.ledger is not None and weights.fairshare > 0:
            fairshare = self.ledger.fair_share_factor(
                job.spec.user, job.spec.account, now
            )
        else:
            fairshare = 0.0
        return (
            weights.age * age_factor
            + weights.size * size_factor
            + weights.fairshare * fairshare
            + weights.qos * job.spec.qos_priority
        )

    def __repr__(self) -> str:
        return f"<MultifactorPriority weights={self.weights!r}>"
