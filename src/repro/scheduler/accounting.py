"""Usage accounting and fair-share bookkeeping.

The paper notes that QPU-vendor access is "managed through proprietary
accounting mechanisms" which must be reconciled with "institutional
resource management policies".  This module is the institutional side:
a ledger of node-seconds and gres-seconds per user/account, from which
a classic SLURM-style fair-share factor is derived (usage decayed
exponentially, compared against allocated shares).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass
class UsageRecord:
    """Accumulated decayed usage for one (user, account) pair."""

    node_seconds: float = 0.0
    gres_seconds: Dict[str, float] = field(default_factory=dict)
    last_update: float = 0.0


class AccountingLedger:
    """Decayed-usage ledger with fair-share factors.

    Parameters
    ----------
    half_life:
        Usage half-life in simulated seconds (SLURM's
        ``PriorityDecayHalfLife``).  Older consumption counts
        progressively less against a user.
    gres_weight:
        How many node-second-equivalents one gres-second costs.  QPUs
        are scarce, so their default weight is high — this is the
        knob institutions would use to charge quantum time.
    """

    def __init__(
        self, half_life: float = 7 * 24 * 3600.0, gres_weight: float = 50.0
    ) -> None:
        if half_life <= 0:
            raise ConfigurationError("half_life must be positive")
        self.half_life = half_life
        self.gres_weight = gres_weight
        self.records: Dict[Tuple[str, str], UsageRecord] = {}
        #: Relative shares per account (defaults to 1.0 when unset).
        self.shares: Dict[str, float] = {}

    def set_shares(self, account: str, shares: float) -> None:
        if shares <= 0:
            raise ConfigurationError("shares must be positive")
        self.shares[account] = shares

    def _decay_factor(self, elapsed: float) -> float:
        return 0.5 ** (elapsed / self.half_life)

    def _record(self, user: str, account: str) -> UsageRecord:
        return self.records.setdefault((user, account), UsageRecord())

    def charge(
        self,
        user: str,
        account: str,
        now: float,
        node_seconds: float,
        gres_seconds: Optional[Dict[str, float]] = None,
    ) -> None:
        """Add consumption, decaying previously recorded usage to ``now``."""
        if node_seconds < 0:
            raise ConfigurationError("cannot charge negative usage")
        record = self._record(user, account)
        factor = self._decay_factor(max(now - record.last_update, 0.0))
        record.node_seconds = record.node_seconds * factor + node_seconds
        for gres_type in set(record.gres_seconds) | set(gres_seconds or {}):
            decayed = record.gres_seconds.get(gres_type, 0.0) * factor
            record.gres_seconds[gres_type] = decayed + (
                (gres_seconds or {}).get(gres_type, 0.0)
            )
        record.last_update = now

    def effective_usage(self, user: str, account: str, now: float) -> float:
        """Node-second-equivalents charged to the pair, decayed to ``now``."""
        record = self.records.get((user, account))
        if record is None:
            return 0.0
        factor = self._decay_factor(max(now - record.last_update, 0.0))
        gres_total = sum(record.gres_seconds.values())
        return (record.node_seconds + self.gres_weight * gres_total) * factor

    def fair_share_factor(self, user: str, account: str, now: float) -> float:
        """SLURM-classic factor ``2^(-usage_norm/shares_norm)`` in (0, 1].

        1.0 means "no recorded usage"; heavy users decay toward 0.
        """
        total_usage = sum(
            self.effective_usage(u, a, now) for (u, a) in self.records
        )
        if total_usage <= 0:
            return 1.0
        usage_norm = self.effective_usage(user, account, now) / total_usage
        total_shares = sum(self.shares.values()) or 1.0
        shares_norm = self.shares.get(account, 1.0) / max(
            total_shares, len(self.shares) or 1.0
        )
        if shares_norm <= 0:
            return 0.0
        return math.pow(2.0, -usage_norm / shares_norm)

    def __repr__(self) -> str:
        return f"<AccountingLedger pairs={len(self.records)}>"
