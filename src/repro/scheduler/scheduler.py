"""The batch scheduler: SLURM-like, event-driven, policy-pluggable.

Responsibilities:

- accept :class:`~repro.scheduler.job.JobSpec` submissions (including
  heterogeneous jobs, which allocate all components atomically — the
  semantics of Listing 1);
- run a scheduling pass whenever state changes (submission, completion,
  resize), delegating start decisions to a
  :class:`~repro.scheduler.backfill.SchedulingPolicy`;
- start jobs: create allocations, spawn the work process, enforce
  walltime, release resources at the end, charge accounting;
- support *malleability*: live jobs may shrink (release nodes
  immediately) or request growth, which the scheduler grants ahead of
  starting new jobs (grow-first default, configurable);
- requeue jobs evicted by node failures when their spec asks for it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import (
    AllocationError,
    JobRejectedError,
    MalleabilityError,
    SchedulingError,
)
from repro.scheduler.backfill import (
    EasyBackfillPolicy,
    SchedulingPolicy,
    TimelineCache,
)
from repro.scheduler.accounting import AccountingLedger
from repro.scheduler.job import Job, JobContext, JobSpec, JobState
from repro.scheduler.priority import MultifactorPriority
from repro.sim.events import Event, Interrupt
from repro.sim.kernel import Kernel
from repro.sim.monitor import SampleSeries


class GrowRequest:
    """A pending malleable-grow request."""

    def __init__(
        self, job: Job, partition: str, count: int, event: Event
    ) -> None:
        self.job = job
        self.partition = partition
        self.count = count
        self.event = event

    def __repr__(self) -> str:
        return f"<GrowRequest {self.job.id} +{self.count}@{self.partition}>"


class ComponentRequest:
    """A pending request to attach a whole component to a live job.

    This is the quantum-side counterpart of node malleability: an
    *elastic* hybrid job acquires its QPU component only around quantum
    phases and detaches it in between, so the scarce device never sits
    idle inside a long-lived allocation.
    """

    def __init__(self, job: Job, component, event: Event) -> None:
        self.job = job
        self.component = component
        self.event = event

    def __repr__(self) -> str:
        return (
            f"<ComponentRequest {self.job.id} "
            f"{self.component.partition}x{self.component.nodes}>"
        )


class BatchScheduler:
    """Event-driven batch scheduler over a :class:`Cluster`.

    Parameters
    ----------
    policy:
        Start-decision policy (default EASY backfill, the most common
        production configuration).
    priority:
        Multifactor priority engine; defaults to FIFO-like (age only).
    ledger:
        Accounting ledger charged on job completion.
    grow_before_new_jobs:
        When True (default), pending malleable grow requests are
        satisfied before new jobs are started in a scheduling pass.
    cycle_time:
        Scheduling latency: seconds between a state change and the
        scheduling pass that reacts to it (SLURM's sched/backfill
        interval).  0 (default) schedules instantaneously; production
        systems run 10-60 s cycles, which is what makes per-step
        queueing expensive for second-scale steps.
    incremental_timelines:
        When True (default), attach a
        :class:`~repro.scheduler.backfill.TimelineCache` to the policy
        so successive scheduling passes reuse the previous availability
        timeline, applying only the allocation deltas since the last
        pass instead of rebuilding from every active allocation.
        ``scheduler.timeline_cache.invalidate()`` is the full-rebuild
        escape hatch.
    timeline_debug:
        When True (default: the ``REPRO_TIMELINE_DEBUG`` environment
        variable), every incremental timeline is cross-checked against
        a from-scratch rebuild and divergence raises.
    """

    def __init__(
        self,
        kernel: Kernel,
        cluster: Cluster,
        policy: Optional[SchedulingPolicy] = None,
        priority: Optional[MultifactorPriority] = None,
        ledger: Optional[AccountingLedger] = None,
        grow_before_new_jobs: bool = True,
        cycle_time: float = 0.0,
        incremental_timelines: bool = True,
        timeline_debug: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.cluster = cluster
        self.policy = policy or EasyBackfillPolicy()
        self.ledger = ledger or AccountingLedger()
        self.priority = priority or MultifactorPriority(
            total_nodes=max(cluster.total_nodes(), 1), ledger=self.ledger
        )
        self.grow_before_new_jobs = grow_before_new_jobs
        if cycle_time < 0:
            raise SchedulingError("cycle_time must be >= 0")
        self.cycle_time = cycle_time
        #: Incremental availability-timeline cache shared with the
        #: policy; ``None`` when ``incremental_timelines`` is off.
        self.timeline_cache: Optional[TimelineCache] = None
        if incremental_timelines:
            self.timeline_cache = TimelineCache(
                cluster, debug=timeline_debug
            )
            self.policy.timeline_cache = self.timeline_cache

        self.pending: List[Job] = []
        self.running: List[Job] = []
        self.finished_jobs: List[Job] = []
        self.grow_requests: List[GrowRequest] = []
        self.component_requests: List[ComponentRequest] = []
        self.jobs_by_id: Dict[str, Job] = {}

        #: Per-job queue-wait observations (seconds).
        self.wait_times = SampleSeries("scheduler:wait")
        #: Observers called with each job reaching a terminal state.
        self.completion_listeners: List[Callable[[Job], None]] = []

        self._wakeup: Event = kernel.event()
        self._submit_counter = 0
        self._submit_order: Dict[str, int] = {}
        kernel.process(self._loop(), name="scheduler")

    # -- public API ----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Submit a job; returns its runtime record immediately."""
        self._validate(spec)
        job = Job(spec, self.kernel)
        job.submit_time = self.kernel.now
        self._submit_counter += 1
        self._submit_order[job.id] = self._submit_counter
        self.pending.append(job)
        self.jobs_by_id[job.id] = job
        self._kick()
        return job

    def close(self) -> None:
        """Detach this scheduler's timeline cache from the cluster.

        Call when discarding a scheduler while keeping its cluster
        alive (e.g. a policy sweep re-using one cluster): otherwise the
        cache stays subscribed to the cluster's allocation feed and
        keeps doing timeline maintenance for a dead scheduler.
        """
        if self.timeline_cache is not None:
            self.timeline_cache.close()
            if self.policy.timeline_cache is self.timeline_cache:
                self.policy.timeline_cache = None
            self.timeline_cache = None

    def cancel(self, job: Job) -> None:
        """Cancel a pending or running job."""
        if job.state == JobState.PENDING:
            self.pending.remove(job)
            self._finalise(job, JobState.CANCELLED)
        elif job.state == JobState.RUNNING:
            self._kill(job, JobState.CANCELLED)
        # Terminal jobs: no-op.

    def submit_and_wait(self, spec: JobSpec):
        """Generator helper: submit and wait for terminal state.

        Use as ``state = yield from scheduler.submit_and_wait(spec)``.
        """
        job = self.submit(spec)
        yield job.finished
        return job

    @property
    def queue_depth(self) -> int:
        return len(self.pending)

    def quiescent(self) -> bool:
        """No pending or running jobs remain."""
        return not self.pending and not self.running

    # -- malleability API -------------------------------------------------------------

    def shrink_job(
        self, job: Job, partition: str, release_count: int
    ) -> List[str]:
        """Release ``release_count`` nodes of ``job`` in ``partition``.

        Returns the released node names.  The freed nodes become
        immediately available and trigger a scheduling pass.
        """
        if job.state != JobState.RUNNING:
            raise MalleabilityError(
                f"cannot shrink {job.id}: not running ({job.state.value})"
            )
        allocation = job.allocation_for(partition)
        if release_count >= allocation.node_count:
            raise MalleabilityError(
                f"shrink would leave job {job.id} with no node in "
                f"{partition!r} (has {allocation.node_count}, "
                f"releasing {release_count})"
            )
        released = self.cluster.shrink(allocation, release_count)
        self._kick()
        return [node.name for node in released]

    def request_grow(self, job: Job, partition: str, count: int) -> Event:
        """Ask for ``count`` extra nodes; the event fires when granted.

        Grants happen during scheduling passes, competing with queued
        jobs under the ``grow_before_new_jobs`` policy.
        """
        if job.state != JobState.RUNNING:
            raise MalleabilityError(
                f"cannot grow {job.id}: not running ({job.state.value})"
            )
        if count <= 0:
            raise MalleabilityError("grow count must be positive")
        event = self.kernel.event()
        self.grow_requests.append(GrowRequest(job, partition, count, event))
        self._kick()
        return event

    # -- elastic components (quantum-side malleability) -------------------------

    def request_component(self, job: Job, component) -> Event:
        """Attach ``component`` to a running job; fires with the
        :class:`~repro.cluster.allocation.Allocation` once granted.

        The request competes in scheduling passes alongside malleable
        grows (and ahead of new jobs under ``grow_before_new_jobs``).
        """
        if job.state != JobState.RUNNING:
            raise MalleabilityError(
                f"cannot attach component to {job.id}: not running "
                f"({job.state.value})"
            )
        partition = self.cluster.partition(component.partition)
        if component.nodes > partition.node_count:
            raise JobRejectedError(
                f"component exceeds partition {partition.name!r} size"
            )
        event = self.kernel.event()
        self.component_requests.append(
            ComponentRequest(job, component, event)
        )
        self._kick()
        return event

    def release_component(self, job: Job, partition: str) -> None:
        """Detach and free the job's allocation in ``partition``."""
        if job.state != JobState.RUNNING:
            raise MalleabilityError(
                f"cannot detach component from {job.id}: not running"
            )
        allocation = job.allocation_for(partition)
        self.cluster.release(allocation)
        job.allocations.remove(allocation)
        self._kick()

    def _serve_component_requests(self) -> None:
        remaining: List[ComponentRequest] = []
        for request in self.component_requests:
            if request.job.state != JobState.RUNNING:
                request.event.fail(
                    MalleabilityError(
                        f"job {request.job.id} left RUNNING before the "
                        "component grant"
                    )
                )
                request.event.defuse()
                continue
            component = request.component
            try:
                allocation = self.cluster.allocate(
                    request.job.id,
                    component.partition,
                    component.nodes,
                    gres_request=component.gres,
                    walltime=component.walltime,
                )
            except AllocationError:
                remaining.append(request)
                continue
            request.job.allocations.append(allocation)
            request.event.succeed(allocation)
        self.component_requests = remaining

    # -- failure handling ----------------------------------------------------------------

    def on_node_failure(self, node: Node, evicted_job_id: Optional[str]) -> None:
        """Callback for :class:`repro.cluster.failures.FailureInjector`."""
        if evicted_job_id is None:
            self._kick()
            return
        job = self.jobs_by_id.get(evicted_job_id)
        if job is None or job.state != JobState.RUNNING:
            self._kick()
            return
        requeue = job.spec.requeue_on_failure
        self._kill(job, JobState.NODE_FAIL, failed_node=node)
        if requeue:
            clone = Job(job.spec, self.kernel)
            clone.submit_time = self.kernel.now
            clone.requeue_count = job.requeue_count + 1
            self._submit_counter += 1
            self._submit_order[clone.id] = self._submit_counter
            self.pending.append(clone)
            self.jobs_by_id[clone.id] = clone
        self._kick()

    # -- internals -----------------------------------------------------------------------

    def _validate(self, spec: JobSpec) -> None:
        for dep_id in [*spec.after_ok, *spec.after_any]:
            if dep_id not in self.jobs_by_id:
                raise JobRejectedError(
                    f"job {spec.name!r}: unknown dependency {dep_id!r}"
                )
        for component in spec.components:
            partition = self.cluster.partition(component.partition)
            if component.nodes > partition.node_count:
                raise JobRejectedError(
                    f"job {spec.name!r}: {component.nodes} nodes exceed "
                    f"partition {partition.name!r} size {partition.node_count}"
                )
            if (
                partition.max_walltime is not None
                and component.walltime > partition.max_walltime
            ):
                raise JobRejectedError(
                    f"job {spec.name!r}: walltime {component.walltime} "
                    f"exceeds partition limit {partition.max_walltime}"
                )
            for gres_type, count in component.gres.items():
                if count > partition.gres_capacity(gres_type):
                    raise JobRejectedError(
                        f"job {spec.name!r}: gres {gres_type}:{count} "
                        f"exceeds partition capacity "
                        f"{partition.gres_capacity(gres_type)}"
                    )

    def _kick(self) -> None:
        """Request a scheduling pass (coalesces same-instant kicks)."""
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _loop(self):
        while True:
            yield self._wakeup
            if self.cycle_time > 0:
                # Batch state changes arriving within one cycle; the
                # pass happens at the end of the cycle, as on systems
                # with a periodic scheduler.
                yield self.kernel.timeout(self.cycle_time)
            self._wakeup = self.kernel.event()
            self._pass()

    def _pass(self) -> None:
        if self.grow_before_new_jobs:
            self._serve_grow_requests()
            self._serve_component_requests()
        self._cancel_unsatisfiable_dependents()
        eligible = [
            job for job in self.pending if self._dependencies_met(job)
        ]
        if eligible:
            now = self.kernel.now
            for job in eligible:
                job.priority = self.priority.compute(job, now)
            ordered = sorted(
                eligible,
                key=lambda j: (-j.priority, self._submit_order[j.id]),
            )
            to_start = self.policy.select(ordered, self.cluster, now)
            for job in to_start:
                self._try_start(job)
        if not self.grow_before_new_jobs:
            self._serve_grow_requests()
            self._serve_component_requests()

    # -- dependency handling -------------------------------------------------

    def _dependencies_met(self, job: Job) -> bool:
        for dep_id in job.spec.after_ok:
            dep = self.jobs_by_id[dep_id]
            if dep.state != JobState.COMPLETED:
                return False
        for dep_id in job.spec.after_any:
            dep = self.jobs_by_id[dep_id]
            if not dep.state.is_terminal:
                return False
        return True

    def _dependency_failed(self, job: Job) -> bool:
        """An ``afterok`` dependency terminated without completing."""
        return any(
            self.jobs_by_id[dep_id].state.is_terminal
            and self.jobs_by_id[dep_id].state != JobState.COMPLETED
            for dep_id in job.spec.after_ok
        )

    def _cancel_unsatisfiable_dependents(self) -> None:
        """SLURM's DependencyNeverSatisfied: cancel dead-end jobs."""
        for job in list(self.pending):
            if self._dependency_failed(job):
                self.pending.remove(job)
                job.spec.tags["cancel_reason"] = (
                    "dependency_never_satisfied"
                )
                self._finalise(job, JobState.CANCELLED)

    def _serve_grow_requests(self) -> None:
        remaining: List[GrowRequest] = []
        for request in self.grow_requests:
            if request.job.state != JobState.RUNNING:
                request.event.fail(
                    MalleabilityError(
                        f"job {request.job.id} left RUNNING before grow grant"
                    )
                )
                request.event.defuse()
                continue
            try:
                allocation = request.job.allocation_for(request.partition)
                nodes = self.cluster.grow(allocation, request.count)
            except (AllocationError, JobRejectedError):
                remaining.append(request)
                continue
            request.event.succeed([node.name for node in nodes])
        self.grow_requests = remaining

    def _try_start(self, job: Job) -> None:
        """Allocate every component atomically and launch the job."""
        allocations = []
        try:
            for component in job.spec.components:
                allocations.append(
                    self.cluster.allocate(
                        job.id,
                        component.partition,
                        component.nodes,
                        gres_request=component.gres,
                        walltime=component.walltime,
                    )
                )
        except AllocationError:
            # Count-based policy feasibility can diverge from actual node
            # picking (e.g. gres packing): roll back and leave pending.
            for allocation in allocations:
                self.cluster.release(allocation)
            return

        self.pending.remove(job)
        self.running.append(job)
        job.state = JobState.RUNNING
        job.start_time = self.kernel.now
        job.allocations = allocations
        assert job.submit_time is not None
        self.wait_times.record(job.start_time - job.submit_time)
        job.started.succeed(job)
        self.kernel.process(self._run_job(job), name=f"run:{job.id}")

    def _run_job(self, job: Job):
        """Drive one running job: work + walltime enforcement."""
        limit = job.spec.walltime_limit
        context = JobContext(self.kernel, job, self)
        if job.spec.work is not None:
            worker = self.kernel.process(
                job.spec.work(context), name=f"work:{job.id}"
            )
        else:
            assert job.spec.duration is not None
            worker = self.kernel.process(
                self._sleep_work(job.spec.duration), name=f"work:{job.id}"
            )
        job._worker = worker
        deadline = self.kernel.timeout(limit)
        try:
            outcome = yield self.kernel.any_of([worker, deadline])
        except BaseException:
            # The worker crashed (its failure propagates through the
            # condition).  If the job was already killed externally the
            # unwind is expected; otherwise record the failure.
            if job.state == JobState.RUNNING:
                self._release_and_finalise(job, JobState.FAILED)
            return

        if job.state != JobState.RUNNING:
            # Killed externally (cancel / node failure) while we waited.
            return
        if worker in outcome:
            self._release_and_finalise(job, JobState.COMPLETED)
        else:
            # Walltime exceeded: interrupt the work, then clean up.
            if worker.is_alive:
                worker.interrupt("walltime")
                try:
                    yield worker  # wait for the generator to unwind
                except BaseException:
                    pass
            self._release_and_finalise(job, JobState.TIMEOUT)

    def _sleep_work(self, duration: float):
        try:
            yield self.kernel.timeout(duration)
        except Interrupt:
            pass

    def _kill(self, job: Job, state: JobState,
              failed_node: Optional[Node] = None) -> None:
        """Forcibly terminate a running job."""
        worker = job._worker
        if worker is not None and worker.is_alive:
            worker.interrupt("killed")
        # Node-failure eviction already freed the failed node; release
        # the rest of the allocation.
        for allocation in job.allocations:
            if allocation.released:
                continue
            if failed_node is not None and failed_node in allocation.nodes:
                allocation.remove_nodes([failed_node])
            self.cluster.release(allocation)
        self._finalise_running(job, state)

    def _release_and_finalise(self, job: Job, state: JobState) -> None:
        for allocation in job.allocations:
            if not allocation.released:
                self.cluster.release(allocation)
        self._finalise_running(job, state)

    def _finalise_running(self, job: Job, state: JobState) -> None:
        if job in self.running:
            self.running.remove(job)
        self._charge(job)
        self._finalise(job, state)
        self._kick()

    def _finalise(self, job: Job, state: JobState) -> None:
        job.state = state
        job.end_time = self.kernel.now
        self.finished_jobs.append(job)
        job.finished.succeed(state)
        for listener in self.completion_listeners:
            listener(job)
        # Dependents may have become eligible (or unsatisfiable).
        self._kick()

    def _charge(self, job: Job) -> None:
        """Charge node/gres usage for the job's lifetime to the ledger."""
        if job.start_time is None:
            return
        elapsed = self.kernel.now - job.start_time
        node_seconds = 0.0
        gres_seconds: Dict[str, float] = {}
        for allocation in job.allocations:
            node_seconds += allocation.node_count * elapsed
            for gres_type, count in allocation.gres_counts().items():
                gres_seconds[gres_type] = (
                    gres_seconds.get(gres_type, 0.0) + count * elapsed
                )
        self.ledger.charge(
            job.spec.user,
            job.spec.account,
            self.kernel.now,
            node_seconds,
            gres_seconds,
        )

    def __repr__(self) -> str:
        return (
            f"<BatchScheduler policy={self.policy.name} "
            f"pending={len(self.pending)} running={len(self.running)} "
            f"finished={len(self.finished_jobs)}>"
        )
