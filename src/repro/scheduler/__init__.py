"""SLURM-like batch scheduler: jobs, priorities, backfill, accounting."""

from repro.scheduler.accounting import AccountingLedger, UsageRecord
from repro.scheduler.backfill import (
    POLICIES,
    ClusterTimeline,
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FIFOPolicy,
    PartitionTimeline,
    SchedulingPolicy,
    TimelineCache,
    make_policy,
    profiles_equal,
)
from repro.scheduler.job import (
    Job,
    JobComponent,
    JobContext,
    JobSpec,
    JobState,
)
from repro.scheduler.priority import MultifactorPriority, PriorityWeights
from repro.scheduler.scheduler import BatchScheduler, GrowRequest

__all__ = [
    "AccountingLedger",
    "BatchScheduler",
    "ClusterTimeline",
    "ConservativeBackfillPolicy",
    "EasyBackfillPolicy",
    "FIFOPolicy",
    "GrowRequest",
    "Job",
    "JobComponent",
    "JobContext",
    "JobSpec",
    "JobState",
    "MultifactorPriority",
    "POLICIES",
    "PartitionTimeline",
    "PriorityWeights",
    "SchedulingPolicy",
    "TimelineCache",
    "UsageRecord",
    "make_policy",
    "profiles_equal",
]
