"""Scheduling policies: FIFO, EASY backfill, conservative backfill.

All three policies share an *availability timeline*: a per-partition
piecewise-constant profile of free node and gres counts, built from the
expected end times (start + requested walltime) of running jobs.  EASY
makes a reservation for the highest-priority blocked job and lets later
jobs jump the queue only if they do not delay that reservation;
conservative gives every queued job a reservation.

The timeline is count-based (nodes within a partition are
interchangeable), which matches how production backfill schedulers
reason.  To make the hot path scale to fleet-sized workloads, the
profile is *compiled* rather than rescanned:

- :class:`PartitionTimeline` stores sparse capacity deltas but, on
  demand, materialises prefix-summed ``(time, free_nodes, free_gres)``
  arrays plus suffix running-minima (:meth:`PartitionTimeline.compile`).
  :meth:`PartitionTimeline.fits` is then a bisect plus an O(window)
  scan — with O(1) accept/reject fast paths through the suffix minima —
  instead of two full accumulation passes over every breakpoint.
- :meth:`ClusterTimeline.earliest_start` walks the candidate
  breakpoints *once* per component with a monotonic-deque sliding
  window minimum (O(B) amortised) instead of re-running ``fits`` from
  scratch per candidate (O(B²)).
- Timelines support copy-on-write *forks*
  (:meth:`ClusterTimeline.fork` / :meth:`ClusterTimeline.speculate`):
  a fork shares the delta arrays and compiled profile with its parent
  until one side writes, so :class:`EasyBackfillPolicy` can trial-place
  a backfill candidate without reconstructing the cluster timeline.
- :class:`TimelineCache` keeps one base timeline alive *across*
  scheduling passes, applying only the allocation deltas the cluster
  reports (job starts/ends, malleable grow/shrink) and re-anchoring the
  profile to the current instant (:meth:`ClusterTimeline.advance_to`).
  A capacity checksum acts as the full-rebuild escape hatch (node
  failures/repairs change usable capacity without an allocation
  event), and a debug mode cross-checks every incremental profile
  against a from-scratch rebuild.

Policies receive their timeline through
:meth:`SchedulingPolicy._timeline`, so the public ``select`` API is
unchanged whether or not a cache is attached.
"""

from __future__ import annotations

import bisect
import os
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError, SchedulingError
from repro.scheduler.job import Job, JobComponent

#: Cap on how far into the future the timeline reasons (one year); jobs
#: that cannot start within it are treated as unschedulable for now.
HORIZON = 365 * 24 * 3600.0

#: Environment switch for the incremental-vs-rebuild cross-check.
DEBUG_ENV_VAR = "REPRO_TIMELINE_DEBUG"


class PartitionTimeline:
    """Free-capacity profile for one partition, from ``now`` onwards.

    The profile is stored as sorted breakpoint times with capacity
    deltas applied *at* each time, and compiled on demand into
    prefix-summed free-capacity arrays plus suffix running-minima.
    Mutations invalidate the compiled form; forks share both forms
    copy-on-write.
    """

    __slots__ = (
        "now",
        "capacity_nodes",
        "capacity_gres",
        "_times",
        "_node_deltas",
        "_gres_deltas",
        "_pending",
        "_owns",
        "_owns_compiled",
        "_dirty",
        "_cnodes",
        "_cgres",
        "_snodes",
        "_sgres",
    )

    #: Above this many buffered deltas, :meth:`_flush` rebuilds the
    #: breakpoint arrays with one merge pass instead of bisect-inserts.
    _FLUSH_MERGE_THRESHOLD = 4

    def __init__(
        self,
        capacity_nodes: int,
        capacity_gres: Dict[str, int],
        now: float,
    ) -> None:
        self.now = now
        self.capacity_nodes = capacity_nodes
        self.capacity_gres = dict(capacity_gres)
        # Sorted breakpoint times; deltas applied *at* each time.
        self._times: List[float] = [now]
        self._node_deltas: List[int] = [capacity_nodes]
        self._gres_deltas: List[Dict[str, int]] = [dict(capacity_gres)]
        #: Buffered deltas (time -> [nodes, gres]) not yet merged into
        #: the sorted arrays; merged lazily by :meth:`_flush`.
        self._pending: Dict[float, list] = {}
        self._owns = True
        self._owns_compiled = True
        self._dirty = True
        self._cnodes: List[int] = []
        self._cgres: Dict[str, List[int]] = {}
        self._snodes: List[int] = []
        self._sgres: Dict[str, List[int]] = {}

    # -- copy-on-write ------------------------------------------------------

    def fork(self) -> "PartitionTimeline":
        """A trial copy sharing state with this timeline until written."""
        self._flush()
        clone = PartitionTimeline.__new__(PartitionTimeline)
        clone.now = self.now
        clone.capacity_nodes = self.capacity_nodes
        clone.capacity_gres = self.capacity_gres
        clone._times = self._times
        clone._node_deltas = self._node_deltas
        clone._gres_deltas = self._gres_deltas
        clone._pending = {}
        # Neither side may mutate the shared arrays in place from here.
        self._owns = False
        clone._owns = False
        self._owns_compiled = False
        clone._owns_compiled = False
        clone._dirty = self._dirty
        clone._cnodes = self._cnodes
        clone._cgres = self._cgres
        clone._snodes = self._snodes
        clone._sgres = self._sgres
        return clone

    def _materialise(self) -> None:
        if self._owns:
            return
        self._times = list(self._times)
        self._node_deltas = list(self._node_deltas)
        self._gres_deltas = [dict(d) for d in self._gres_deltas]
        self._owns = True

    def _materialise_compiled(self) -> None:
        if self._owns_compiled:
            return
        self._cnodes = list(self._cnodes)
        self._cgres = {t: list(c) for t, c in self._cgres.items()}
        self._snodes = list(self._snodes)
        self._sgres = {t: list(c) for t, c in self._sgres.items()}
        self._owns_compiled = True

    # -- mutation -----------------------------------------------------------

    def _add_delta(
        self, time: float, nodes: int, gres: Optional[Dict[str, int]] = None
    ) -> None:
        """Buffer one capacity delta; O(1) until a reader flushes."""
        self._dirty = True
        time = max(time, self.now)
        entry = self._pending.get(time)
        if entry is None:
            self._pending[time] = [nodes, dict(gres) if gres else {}]
        else:
            entry[0] += nodes
            if gres:
                pending_gres = entry[1]
                for gres_type, count in gres.items():
                    pending_gres[gres_type] = (
                        pending_gres.get(gres_type, 0) + count
                    )

    def _flush(self) -> None:
        """Merge buffered deltas into the sorted breakpoint arrays.

        A handful of deltas bisect-insert individually; larger batches
        (e.g. building a timeline from every active allocation) merge in
        one pass — O(B + k log k) instead of O(k·B) repeated inserts.
        """
        pending = self._pending
        if not pending:
            return
        self._materialise()
        self._pending = {}
        times = self._times
        node_deltas = self._node_deltas
        gres_deltas = self._gres_deltas
        if len(pending) <= self._FLUSH_MERGE_THRESHOLD:
            for time, (nodes, gres) in sorted(pending.items()):
                index = bisect.bisect_left(times, time)
                if index < len(times) and times[index] == time:
                    node_deltas[index] += nodes
                    if gres:
                        entry = gres_deltas[index]
                        for gres_type, count in gres.items():
                            entry[gres_type] = entry.get(gres_type, 0) + count
                else:
                    times.insert(index, time)
                    node_deltas.insert(index, nodes)
                    gres_deltas.insert(index, gres)
            return
        merged_times: List[float] = []
        merged_nodes: List[int] = []
        merged_gres: List[Dict[str, int]] = []
        index = 0
        count = len(times)
        for time, (nodes, gres) in sorted(pending.items()):
            while index < count and times[index] < time:
                merged_times.append(times[index])
                merged_nodes.append(node_deltas[index])
                merged_gres.append(gres_deltas[index])
                index += 1
            if index < count and times[index] == time:
                nodes += node_deltas[index]
                entry = gres_deltas[index]
                for gres_type, delta in entry.items():
                    gres[gres_type] = gres.get(gres_type, 0) + delta
                index += 1
            merged_times.append(time)
            merged_nodes.append(nodes)
            merged_gres.append(gres)
        merged_times.extend(times[index:])
        merged_nodes.extend(node_deltas[index:])
        merged_gres.extend(gres_deltas[index:])
        self._times = merged_times
        self._node_deltas = merged_nodes
        self._gres_deltas = merged_gres

    def occupy(
        self,
        start: float,
        end: float,
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> None:
        """Subtract capacity over [start, end) — a running job or
        a reservation.

        When the compiled profile is current, the occupation is *patched
        into* the compiled arrays (an O(window) slice update plus a
        bounded suffix-minima ripple) instead of invalidating them —
        the conservative-backfill loop alternates ``earliest_start``
        and ``occupy``, and this keeps each iteration from paying a
        full O(B) recompile.
        """
        if end <= start:
            return
        if not self._dirty and not self._pending and (
            not gres or all(t in self._cgres for t in gres)
        ):
            self._patch_occupy(start, end, nodes, gres)
            return
        negative_gres = {t: -c for t, c in (gres or {}).items()}
        self._add_delta(start, -nodes, negative_gres)
        if end < HORIZON + self.now:
            self._add_delta(end, nodes, dict(gres or {}))

    def _insert_breakpoint(self, index: int, time: float) -> None:
        """Insert a breakpoint carrying over the values in force.

        Compiled prefix columns duplicate their left neighbour (the
        profile is right-continuous); suffix columns get a placeholder
        that the caller's window recompute overwrites."""
        self._times.insert(index, time)
        self._node_deltas.insert(index, 0)
        self._gres_deltas.insert(index, {})
        self._cnodes.insert(index, self._cnodes[index - 1])
        self._snodes.insert(index, 0)
        for column in self._cgres.values():
            column.insert(index, column[index - 1])
        for column in self._sgres.values():
            column.insert(index, 0)

    @staticmethod
    def _repair_suffix(
        prefix: List[int], suffix: List[int], lo: int, hi: int
    ) -> None:
        """Recompute suffix running-minima over [lo, hi], then ripple
        left of ``lo`` until a value is unchanged."""
        last = len(prefix) - 1
        index = hi if hi < last else last
        while index >= lo:
            value = prefix[index]
            if index < last and suffix[index + 1] < value:
                value = suffix[index + 1]
            suffix[index] = value
            index -= 1
        index = lo - 1
        while index >= 0:
            value = prefix[index]
            if suffix[index + 1] < value:
                value = suffix[index + 1]
            if suffix[index] == value:
                break
            suffix[index] = value
            index -= 1

    def _patch_occupy(
        self,
        start: float,
        end: float,
        nodes: int,
        gres: Optional[Dict[str, int]],
    ) -> None:
        """Apply an occupation to delta *and* compiled arrays in place,
        leaving the compiled form exactly equal to a recompile (integer
        prefix sums patch exactly; no float error can accumulate)."""
        self._materialise()
        self._materialise_compiled()
        start = max(start, self.now)
        times = self._times
        lo = bisect.bisect_left(times, start)
        if lo == len(times) or times[lo] != start:
            self._insert_breakpoint(lo, start)
        bounded = end < HORIZON + self.now
        if bounded:
            hi = bisect.bisect_left(times, end)
            if hi == len(times) or times[hi] != end:
                self._insert_breakpoint(hi, end)
        else:
            hi = len(times)
        node_deltas = self._node_deltas
        node_deltas[lo] -= nodes
        if bounded:
            node_deltas[hi] += nodes
        cnodes = self._cnodes
        if nodes:
            cnodes[lo:hi] = [value - nodes for value in cnodes[lo:hi]]
        self._repair_suffix(cnodes, self._snodes, lo, hi)
        gres_deltas = self._gres_deltas
        for gres_type, count in (gres or {}).items():
            entry = gres_deltas[lo]
            entry[gres_type] = entry.get(gres_type, 0) - count
            if bounded:
                entry = gres_deltas[hi]
                entry[gres_type] = entry.get(gres_type, 0) + count
            if count:
                column = self._cgres[gres_type]
                column[lo:hi] = [value - count for value in column[lo:hi]]
        for gres_type, column in self._cgres.items():
            self._repair_suffix(column, self._sgres[gres_type], lo, hi)

    def apply_busy(
        self,
        start: float,
        end: Optional[float],
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> None:
        """Incremental-update primitive: subtract capacity over
        [start, end), or for good when ``end`` is None (a job whose
        expected end lies beyond the horizon)."""
        negative_gres = {t: -c for t, c in (gres or {}).items()}
        self._add_delta(start, -nodes, negative_gres)
        if end is not None:
            self._add_delta(end, nodes, dict(gres or {}))

    def apply_free(
        self,
        start: float,
        end: Optional[float],
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> None:
        """Inverse of :meth:`apply_busy` from ``start`` onwards: return
        capacity that an earlier ``apply_busy`` took, cancelling its
        give-back delta at ``end``.  Exactly-cancelled breakpoints are
        pruned so long-lived cached timelines do not accumulate dead
        entries."""
        self._add_delta(start, nodes, dict(gres or {}))
        if end is not None:
            negative_gres = {t: -c for t, c in (gres or {}).items()}
            self._add_delta(end, -nodes, negative_gres)
            self._prune_zero_at(end)
        self._prune_zero_at(start)

    def _prune_zero_at(self, time: float) -> None:
        self._flush()
        index = bisect.bisect_left(self._times, time)
        if index == 0 or index >= len(self._times):
            return  # never prune the anchor entry at ``now``
        if self._times[index] != time or self._node_deltas[index] != 0:
            return
        if any(self._gres_deltas[index].values()):
            return
        del self._times[index]
        del self._node_deltas[index]
        del self._gres_deltas[index]

    def advance_to(self, new_now: float) -> None:
        """Re-anchor the profile at ``new_now``: merge every delta at or
        before it into a single opening entry and drop breakpoints that
        cancelled out."""
        if new_now <= self.now:
            return
        self._flush()
        self._materialise()
        self._dirty = True
        times = self._times
        cut = bisect.bisect_right(times, new_now)
        nodes = sum(self._node_deltas[:cut])
        gres: Dict[str, int] = {}
        for delta in self._gres_deltas[:cut]:
            for gres_type, count in delta.items():
                gres[gres_type] = gres.get(gres_type, 0) + count
        gres = {t: c for t, c in gres.items() if c != 0}
        new_times = [new_now]
        new_nodes = [nodes]
        new_gres = [gres]
        for index in range(cut, len(times)):
            node_delta = self._node_deltas[index]
            gres_delta = self._gres_deltas[index]
            if node_delta == 0 and not any(gres_delta.values()):
                continue
            new_times.append(times[index])
            new_nodes.append(node_delta)
            new_gres.append(gres_delta)
        self._times = new_times
        self._node_deltas = new_nodes
        self._gres_deltas = new_gres
        self.now = new_now

    # -- compiled profile ---------------------------------------------------

    def compile(self) -> None:
        """Materialise prefix-summed free-capacity arrays plus suffix
        running-minima.  Idempotent; mutations re-flag for recompile
        (except :meth:`occupy` against a current profile, which patches
        the compiled arrays in place and stays clean)."""
        self._flush()
        if not self._dirty:
            return
        node_deltas = self._node_deltas
        gres_deltas = self._gres_deltas
        count = len(node_deltas)
        cnodes: List[int] = [0] * count
        acc = 0
        for index in range(count):
            acc += node_deltas[index]
            cnodes[index] = acc
        gres_types = set()
        for delta in gres_deltas:
            gres_types.update(delta)
        cgres: Dict[str, List[int]] = {}
        for gres_type in gres_types:
            column = [0] * count
            acc = 0
            for index in range(count):
                acc += gres_deltas[index].get(gres_type, 0)
                column[index] = acc
            cgres[gres_type] = column
        snodes = list(cnodes)
        for index in range(count - 2, -1, -1):
            if snodes[index + 1] < snodes[index]:
                snodes[index] = snodes[index + 1]
        sgres: Dict[str, List[int]] = {}
        for gres_type, column in cgres.items():
            suffix = list(column)
            for index in range(count - 2, -1, -1):
                if suffix[index + 1] < suffix[index]:
                    suffix[index] = suffix[index + 1]
            sgres[gres_type] = suffix
        self._cnodes = cnodes
        self._cgres = cgres
        self._snodes = snodes
        self._sgres = sgres
        self._owns_compiled = True
        self._dirty = False

    # -- queries ------------------------------------------------------------

    def breakpoints(self) -> List[float]:
        self._flush()
        return list(self._times)

    def profile(self) -> List[Tuple[float, int, Dict[str, int]]]:
        """Piecewise-constant (time, free_nodes, free_gres) segments."""
        self.compile()
        segments = []
        gres_acc: Dict[str, int] = {}
        for index, time in enumerate(self._times):
            for gres_type, column in self._cgres.items():
                gres_acc[gres_type] = column[index]
            segments.append((time, self._cnodes[index], dict(gres_acc)))
        return segments

    def free_at(self, time: float) -> Tuple[int, Dict[str, int]]:
        """Free (nodes, gres) in force at ``time``."""
        self.compile()
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0, {}
        return self._cnodes[index], {
            gres_type: column[index]
            for gres_type, column in self._cgres.items()
        }

    def fits(
        self,
        start: float,
        duration: float,
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> bool:
        """Whether ``nodes`` + ``gres`` are free throughout
        [start, start+duration).

        One bisect locates the segment in force at ``start``; the suffix
        minima give O(1) accept (and full-horizon reject); otherwise a
        single scan over the segments inside the window decides.
        """
        self.compile()
        times = self._times
        end = start + duration
        lo = bisect.bisect_right(times, start) - 1
        if lo < 0:
            # Before the first breakpoint nothing is free.
            if nodes > 0:
                return False
            if gres and any(count > 0 for count in gres.values()):
                return False
            if end <= times[0]:
                return True
            lo = 0
        elif self._cnodes[lo] < nodes:
            return False  # not even free at the window start
        # O(1) accept: enough capacity from ``lo`` all the way out.
        accepted = self._snodes[lo] >= nodes
        if accepted and gres:
            for gres_type, needed in gres.items():
                column = self._sgres.get(gres_type)
                free = column[lo] if column is not None else 0
                if free < needed:
                    accepted = False
                    break
        if accepted:
            return True
        hi = bisect.bisect_left(times, end) - 1
        if hi < lo:
            hi = lo
        if hi >= len(times) - 1:
            # Window reaches past the final breakpoint, where the
            # suffix minima are exact — and they just rejected.
            return False
        window = slice(lo, hi + 1)
        if min(self._cnodes[window]) < nodes:
            return False
        if gres:
            for gres_type, needed in gres.items():
                column = self._cgres.get(gres_type)
                if column is None:
                    if needed > 0:
                        return False
                elif min(column[window]) < needed:
                    return False
        return True

    def sweep_checker(
        self,
        duration: float,
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> "_SweepChecker":
        """A single-pass feasibility checker for ascending start times.

        Feeding it candidate starts in non-decreasing order answers
        "does [t, t+duration) fit?" for each in O(1) amortised via
        monotonic-deque sliding-window minima over the compiled arrays.
        """
        self.compile()
        arrays: List[List[int]] = [self._cnodes]
        suffixes: List[List[int]] = [self._snodes]
        needs: List[int] = [nodes]
        impossible = False
        if gres:
            for gres_type, needed in gres.items():
                column = self._cgres.get(gres_type)
                if column is None:
                    if needed > 0:
                        impossible = True
                    continue
                arrays.append(column)
                suffixes.append(self._sgres[gres_type])
                needs.append(needed)
        return _SweepChecker(
            self._times, duration, arrays, suffixes, needs, impossible
        )


class _SweepChecker:
    """Sliding-window minimum over a compiled partition profile.

    ``check`` must be called with non-decreasing start times; each call
    advances two pointers and per-metric monotonic deques, so a full
    sweep over all breakpoints is O(B) amortised per metric.
    """

    __slots__ = (
        "_times",
        "_duration",
        "_arrays",
        "_suffixes",
        "_needs",
        "_deques",
        "_lo",
        "_hi",
        "_impossible",
    )

    def __init__(
        self,
        times: List[float],
        duration: float,
        arrays: List[List[int]],
        suffixes: List[List[int]],
        needs: List[int],
        impossible: bool,
    ) -> None:
        self._times = times
        self._duration = duration
        self._arrays = arrays
        self._suffixes = suffixes
        self._needs = needs
        self._deques = [deque() for _ in arrays]
        self._lo = 0
        self._hi = 0
        self._impossible = impossible

    def check(self, start: float) -> bool:
        if self._impossible:
            return False
        times = self._times
        count = len(times)
        lo = self._lo
        while lo + 1 < count and times[lo + 1] <= start:
            lo += 1
        self._lo = lo
        end = start + self._duration
        hi = self._hi
        if hi < count and times[hi] < end:
            deques = self._deques
            arrays = self._arrays
            while hi < count and times[hi] < end:
                for dq, array in zip(deques, arrays):
                    value = array[hi]
                    while dq and array[dq[-1]] >= value:
                        dq.pop()
                    dq.append(hi)
                hi += 1
            self._hi = hi
        if hi >= count:
            # The window reaches past the final breakpoint: suffix
            # minima are exact for [lo, ...).
            for suffix, needed in zip(self._suffixes, self._needs):
                if suffix[lo] < needed:
                    return False
            return True
        for dq, array, needed in zip(self._deques, self._arrays, self._needs):
            while dq and dq[0] < lo:
                dq.popleft()
            if dq:
                if array[dq[0]] < needed:
                    return False
            elif array[lo] < needed:
                # Empty window: only the value in force at ``start``.
                return False
        return True


class ClusterTimeline:
    """Availability timelines for every partition of a cluster."""

    __slots__ = ("now", "partitions")

    def __init__(self, cluster: Cluster, now: float) -> None:
        self.now = now
        self.partitions: Dict[str, PartitionTimeline] = {}
        for name, partition in cluster.partitions.items():
            gres_capacity = {
                gres_type: partition.gres_capacity(gres_type)
                for gres_type in partition.gres_types()
            }
            self.partitions[name] = PartitionTimeline(
                partition.usable_node_count(), gres_capacity, now
            )
        # Subtract running allocations until their expected ends.
        for allocation in cluster.active_allocations():
            timeline = self.partitions[allocation.partition_name]
            timeline.occupy(
                now,
                min(allocation.expected_end, now + HORIZON),
                allocation.node_count,
                allocation.gres_counts(),
            )

    # -- copy-on-write ------------------------------------------------------

    def fork(self) -> "ClusterTimeline":
        """A trial copy: cheap, copy-on-write per partition."""
        clone = ClusterTimeline.__new__(ClusterTimeline)
        clone.now = self.now
        clone.partitions = {
            name: timeline.fork()
            for name, timeline in self.partitions.items()
        }
        return clone

    @contextmanager
    def speculate(self) -> Iterator["ClusterTimeline"]:
        """Context manager yielding a disposable trial fork.

        Mutations on the trial never reach this timeline; the fork is
        simply dropped on exit.
        """
        yield self.fork()

    def advance_to(self, new_now: float) -> None:
        """Re-anchor every partition profile at ``new_now``."""
        if new_now <= self.now:
            return
        for timeline in self.partitions.values():
            timeline.advance_to(new_now)
        self.now = new_now

    # -- queries ------------------------------------------------------------

    def _partition_timeline(self, name: str) -> PartitionTimeline:
        timeline = self.partitions.get(name)
        if timeline is None:
            raise ConfigurationError(f"unknown partition {name!r}")
        return timeline

    def fits_at(self, components: List[JobComponent], start: float,
                duration: float) -> bool:
        """Whether every component fits simultaneously at ``start``."""
        for component in components:
            timeline = self._partition_timeline(component.partition)
            if not timeline.fits(
                start, duration, component.nodes, component.gres
            ):
                return False
        return True

    def earliest_start(
        self, components: List[JobComponent], duration: float
    ) -> Optional[float]:
        """Earliest time all components fit for ``duration``, or None.

        The only feasible start times are ``now`` and capacity
        breakpoints (the profile is piecewise constant and windows
        starting inside a segment dominate windows starting at its
        left edge), so one merged ascending sweep with per-component
        sliding-window minima decides in O(B) amortised.
        """
        limit = self.now + HORIZON
        candidates = {self.now}
        checkers = []
        for component in components:
            timeline = self._partition_timeline(component.partition)
            # Build the checker first: it compiles the profile, which
            # also merges any buffered deltas into ``_times``.
            checkers.append(
                timeline.sweep_checker(
                    duration, component.nodes, component.gres
                )
            )
            candidates.update(
                t for t in timeline._times if self.now <= t <= limit
            )
        for candidate in sorted(candidates):
            if all(checker.check(candidate) for checker in checkers):
                return candidate
        return None

    def occupy(
        self, components: List[JobComponent], start: float, duration: float
    ) -> None:
        """Record a job/reservation across all its components."""
        for component in components:
            self.partitions[component.partition].occupy(
                start, start + duration, component.nodes, component.gres
            )


def profiles_equal(
    left: PartitionTimeline, right: PartitionTimeline
) -> bool:
    """Whether two timelines describe the same free-capacity function.

    Compares values segment by segment over the merged breakpoints, so
    representation differences (extra zero-delta breakpoints, absent vs
    zero gres entries) do not count as mismatches.
    """
    left.compile()
    right.compile()
    times = sorted(set(left._times) | set(right._times))
    gres_types = set(left._cgres) | set(right._cgres)
    for time in times:
        left_nodes, left_gres = left.free_at(time)
        right_nodes, right_gres = right.free_at(time)
        if left_nodes != right_nodes:
            return False
        for gres_type in gres_types:
            if left_gres.get(gres_type, 0) != right_gres.get(gres_type, 0):
                return False
    return True


class TimelineCache:
    """Incrementally-maintained base timeline for one cluster.

    Subscribes to the cluster's allocation-delta feed and keeps a
    :class:`ClusterTimeline` alive across scheduling passes: each pass
    re-anchors the cached profile at the current instant instead of
    rebuilding it from every active allocation.  Policies receive
    copy-on-write forks, so their reservations never leak into the base.

    Escape hatches back to a full rebuild:

    - :meth:`invalidate` (manual);
    - a capacity checksum per partition (node failures/repairs change
      usable capacity without an allocation event);
    - an allocation-event version counter (catches deltas the listener
      missed, e.g. after being detached);
    - any allocation whose bookkeeping the listener cannot replay.

    With ``debug=True`` (or ``REPRO_TIMELINE_DEBUG=1``) every served
    timeline is cross-checked against a from-scratch rebuild and a
    :class:`~repro.errors.SchedulingError` is raised on divergence.
    """

    def __init__(self, cluster: Cluster, debug: Optional[bool] = None) -> None:
        self.cluster = cluster
        if debug is None:
            debug = bool(os.environ.get(DEBUG_ENV_VAR))
        self.debug = debug
        self._base: Optional[ClusterTimeline] = None
        #: Per-allocation [nodes_applied, gres, end] bookkeeping so a
        #: release cancels exactly what the earlier events applied.
        self._records: Dict[object, list] = {}
        self._applied_version = -1
        self._needs_rebuild = True
        self._node_state_version = -1
        #: Smallest finite expected end among allocations recorded as
        #: unbounded (expected end at/past the horizon when applied).
        #: Once ``now + HORIZON`` overtakes it, a rebuild would place a
        #: give-back breakpoint the incremental profile lacks, so the
        #: cache rebuilds instead of serving a divergent timeline.
        self._horizon_watch = float("inf")
        #: Introspection counters (exposed for tests/benchmarks).
        self.rebuilds = 0
        self.incremental_passes = 0
        cluster.add_allocation_listener(self._on_delta)

    def close(self) -> None:
        """Detach from the cluster's allocation feed."""
        self.cluster.remove_allocation_listener(self._on_delta)
        self._needs_rebuild = True

    def invalidate(self) -> None:
        """Force a full rebuild on the next :meth:`timeline` call."""
        self._needs_rebuild = True

    # -- cluster delta feed -------------------------------------------------

    def _on_delta(self, kind: str, allocation, count: int) -> None:
        if self._needs_rebuild or self._base is None:
            return  # a full rebuild will pick this up anyway
        self._applied_version += 1
        timeline = self._base.partitions.get(allocation.partition_name)
        if timeline is None:
            self._needs_rebuild = True
            return
        now = self.cluster.kernel.now
        if kind == "allocate":
            expected_end = allocation.expected_end
            end = expected_end if expected_end < now + HORIZON else None
            if end is None and expected_end < self._horizon_watch:
                self._horizon_watch = expected_end
            gres = allocation.gres_counts()
            timeline.apply_busy(now, end, count, gres)
            self._records[allocation] = [count, gres, end]
            return
        record = self._records.get(allocation)
        if record is None:
            self._needs_rebuild = True
            return
        if kind == "release":
            del self._records[allocation]
            timeline.apply_free(now, record[2], record[0], record[1])
        elif kind == "grow":
            timeline.apply_busy(now, record[2], count)
            record[0] += count
        elif kind == "shrink":
            timeline.apply_free(now, record[2], count)
            record[0] -= count
        else:
            self._needs_rebuild = True

    # -- serving ------------------------------------------------------------

    def timeline(self, cluster: Cluster, now: float) -> ClusterTimeline:
        """A timeline equivalent to ``ClusterTimeline(cluster, now)``.

        Served as a copy-on-write fork of the cached base; the caller
        may occupy it freely.
        """
        if cluster is not self.cluster:
            # Not our cluster (e.g. a shared policy object): stay
            # correct, skip the cache.
            return ClusterTimeline(cluster, now)
        base = self._base
        if (
            self._needs_rebuild
            or base is None
            or now < base.now
            or now + HORIZON > self._horizon_watch
            or self._applied_version != cluster.allocation_version
            or self._capacity_changed()
        ):
            base = self._rebuild(now)
        else:
            base.advance_to(now)
            self.incremental_passes += 1
        if self.debug:
            self._cross_check(now)
        return base.fork()

    def _capacity_changed(self) -> bool:
        """O(1): the cluster bumps ``node_state_version`` on every
        capacity-affecting node transition (failure/repair/drain), so a
        version compare replaces the per-pass scan of all node states."""
        return self._node_state_version != self.cluster.node_state_version

    def _rebuild(self, now: float) -> ClusterTimeline:
        base = ClusterTimeline(self.cluster, now)
        self._base = base
        self._records = {}
        self._horizon_watch = float("inf")
        for allocation in self.cluster.active_allocations():
            expected_end = allocation.expected_end
            end = expected_end if expected_end < now + HORIZON else None
            if end is None and expected_end < self._horizon_watch:
                self._horizon_watch = expected_end
            self._records[allocation] = [
                allocation.node_count,
                allocation.gres_counts(),
                end,
            ]
        self._node_state_version = self.cluster.node_state_version
        self._applied_version = self.cluster.allocation_version
        self._needs_rebuild = False
        self.rebuilds += 1
        return base

    def _cross_check(self, now: float) -> None:
        assert self._base is not None
        fresh = ClusterTimeline(self.cluster, now)
        for name, timeline in self._base.partitions.items():
            if not profiles_equal(timeline, fresh.partitions[name]):
                raise SchedulingError(
                    f"incremental timeline diverged from rebuild for "
                    f"partition {name!r} at t={now}: "
                    f"incremental={timeline.profile()!r} "
                    f"rebuilt={fresh.partitions[name].profile()!r}"
                )


class SchedulingPolicy:
    """Interface: pick which pending jobs start *now*."""

    name = "abstract"

    #: Optional incremental timeline source, attached by the owning
    #: :class:`~repro.scheduler.scheduler.BatchScheduler`.  Policies
    #: stay correct without one (standalone ``select`` calls build a
    #: fresh timeline).
    timeline_cache: Optional[TimelineCache] = None

    def _timeline(self, cluster: Cluster, now: float) -> ClusterTimeline:
        cache = self.timeline_cache
        if cache is not None:
            return cache.timeline(cluster, now)
        return ClusterTimeline(cluster, now)

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        """Jobs (subset of ``pending``, in start order) to launch now.

        ``pending`` is already sorted by descending priority.
        """
        raise NotImplementedError


def _starts_now(timeline: ClusterTimeline, job: Job) -> bool:
    return timeline.fits_at(
        job.spec.components, timeline.now, job.spec.walltime_limit
    )


class FIFOPolicy(SchedulingPolicy):
    """Strict first-come-first-served: never schedules around a blocker."""

    name = "fifo"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = self._timeline(cluster, now)
        started: List[Job] = []
        for job in pending:
            if _starts_now(timeline, job):
                timeline.occupy(
                    job.spec.components, now, job.spec.walltime_limit
                )
                started.append(job)
            else:
                break
        return started


class EasyBackfillPolicy(SchedulingPolicy):
    """EASY (aggressive) backfill: one reservation for the head blocker.

    Jobs behind the blocked head may start now only if doing so does
    not push back the head's earliest start time.  Each candidate is
    trial-placed on a copy-on-write fork of the working timeline
    instead of a from-scratch cluster rebuild.
    """

    name = "easy"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = self._timeline(cluster, now)
        started: List[Job] = []
        head: Optional[Job] = None
        head_start: Optional[float] = None
        for job in pending:
            duration = job.spec.walltime_limit
            if head is None:
                if _starts_now(timeline, job):
                    timeline.occupy(job.spec.components, now, duration)
                    started.append(job)
                else:
                    head = job
                    head_start = timeline.earliest_start(
                        job.spec.components, duration
                    )
                continue
            # Backfill candidate: must fit now and not delay the head.
            if not _starts_now(timeline, job):
                continue
            if head_start is None:
                # Head can never start (oversized job): don't let it
                # block the queue, backfill freely.
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
                continue
            with timeline.speculate() as trial:
                trial.occupy(job.spec.components, now, duration)
                new_head_start = trial.earliest_start(
                    head.spec.components, head.spec.walltime_limit
                )
            if new_head_start is not None and new_head_start <= head_start:
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
        return started


class ConservativeBackfillPolicy(SchedulingPolicy):
    """Conservative backfill: every queued job gets a reservation.

    A job may only start now if doing so respects the reservations of
    every higher-priority job, which the incremental timeline enforces
    by construction.
    """

    name = "conservative"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = self._timeline(cluster, now)
        started: List[Job] = []
        for job in pending:
            duration = job.spec.walltime_limit
            start = timeline.earliest_start(job.spec.components, duration)
            if start is None:
                continue  # unschedulable within horizon; skip
            timeline.occupy(job.spec.components, start, duration)
            if start <= now:
                started.append(job)
        return started


#: Registry for CLI/experiment configuration.
POLICIES: Dict[str, type] = {
    policy.name: policy
    for policy in (FIFOPolicy, EasyBackfillPolicy, ConservativeBackfillPolicy)
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
