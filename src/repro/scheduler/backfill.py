"""Scheduling policies: FIFO, EASY backfill, conservative backfill.

All three policies share an *availability timeline*: a per-partition
piecewise-constant profile of free node and gres counts, built from the
expected end times (start + requested walltime) of running jobs.  EASY
makes a reservation for the highest-priority blocked job and lets later
jobs jump the queue only if they do not delay that reservation;
conservative gives every queued job a reservation.

The timeline is count-based (nodes within a partition are
interchangeable), which matches how production backfill schedulers
reason and keeps the profile cheap to scan.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.scheduler.job import Job, JobComponent

#: Cap on how far into the future the timeline reasons (one year); jobs
#: that cannot start within it are treated as unschedulable for now.
HORIZON = 365 * 24 * 3600.0


class PartitionTimeline:
    """Free-capacity profile for one partition, from ``now`` onwards."""

    def __init__(
        self,
        capacity_nodes: int,
        capacity_gres: Dict[str, int],
        now: float,
    ) -> None:
        self.now = now
        self.capacity_nodes = capacity_nodes
        self.capacity_gres = dict(capacity_gres)
        # Sorted breakpoint times; deltas applied *at* each time.
        self._times: List[float] = [now]
        self._node_deltas: List[int] = [capacity_nodes]
        self._gres_deltas: List[Dict[str, int]] = [dict(capacity_gres)]

    def _add_delta(
        self, time: float, nodes: int, gres: Optional[Dict[str, int]] = None
    ) -> None:
        time = max(time, self.now)
        index = bisect.bisect_left(self._times, time)
        if index < len(self._times) and self._times[index] == time:
            self._node_deltas[index] += nodes
            if gres:
                for gres_type, count in gres.items():
                    self._gres_deltas[index][gres_type] = (
                        self._gres_deltas[index].get(gres_type, 0) + count
                    )
        else:
            self._times.insert(index, time)
            self._node_deltas.insert(index, nodes)
            self._gres_deltas.insert(index, dict(gres or {}))

    def occupy(
        self,
        start: float,
        end: float,
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> None:
        """Subtract capacity over [start, end) — a running job or
        a reservation."""
        if end <= start:
            return
        negative_gres = {t: -c for t, c in (gres or {}).items()}
        self._add_delta(start, -nodes, negative_gres)
        if end < HORIZON + self.now:
            self._add_delta(end, nodes, dict(gres or {}))

    def breakpoints(self) -> List[float]:
        return list(self._times)

    def profile(self) -> List[Tuple[float, int, Dict[str, int]]]:
        """Piecewise-constant (time, free_nodes, free_gres) segments."""
        segments = []
        nodes = 0
        gres: Dict[str, int] = {}
        for time, node_delta, gres_delta in zip(
            self._times, self._node_deltas, self._gres_deltas
        ):
            nodes += node_delta
            for gres_type, count in gres_delta.items():
                gres[gres_type] = gres.get(gres_type, 0) + count
            segments.append((time, nodes, dict(gres)))
        return segments

    def fits(
        self,
        start: float,
        duration: float,
        nodes: int,
        gres: Optional[Dict[str, int]] = None,
    ) -> bool:
        """Whether ``nodes`` + ``gres`` are free throughout
        [start, start+duration)."""
        end = start + duration
        free_nodes = 0
        free_gres: Dict[str, int] = {}
        for time, node_delta, gres_delta in zip(
            self._times, self._node_deltas, self._gres_deltas
        ):
            if time >= end:
                break
            free_nodes += node_delta
            for gres_type, count in gres_delta.items():
                free_gres[gres_type] = free_gres.get(gres_type, 0) + count
            if time < start:
                # Segment might end before the window starts; the value
                # entering the window is what matters, checked below via
                # the accumulated state at the last pre-window breakpoint.
                continue
            if free_nodes < nodes:
                return False
            for gres_type, needed in (gres or {}).items():
                if free_gres.get(gres_type, 0) < needed:
                    return False
        # Check the value in force at window start (accumulated state of
        # the last breakpoint <= start).
        free_nodes = 0
        free_gres = {}
        for time, node_delta, gres_delta in zip(
            self._times, self._node_deltas, self._gres_deltas
        ):
            if time > start:
                break
            free_nodes += node_delta
            for gres_type, count in gres_delta.items():
                free_gres[gres_type] = free_gres.get(gres_type, 0) + count
        if free_nodes < nodes:
            return False
        for gres_type, needed in (gres or {}).items():
            if free_gres.get(gres_type, 0) < needed:
                return False
        return True


class ClusterTimeline:
    """Availability timelines for every partition of a cluster."""

    def __init__(self, cluster: Cluster, now: float) -> None:
        self.now = now
        self.partitions: Dict[str, PartitionTimeline] = {}
        for name, partition in cluster.partitions.items():
            gres_capacity = {
                gres_type: partition.gres_capacity(gres_type)
                for node in partition.nodes
                for gres_type in node.gres_types()
            }
            self.partitions[name] = PartitionTimeline(
                partition.usable_node_count(), gres_capacity, now
            )
        # Subtract running allocations until their expected ends.
        for allocation in cluster.active_allocations():
            timeline = self.partitions[allocation.partition_name]
            timeline.occupy(
                now,
                min(allocation.expected_end, now + HORIZON),
                allocation.node_count,
                allocation.gres_counts(),
            )

    def fits_at(self, components: List[JobComponent], start: float,
                duration: float) -> bool:
        """Whether every component fits simultaneously at ``start``."""
        for component in components:
            timeline = self.partitions.get(component.partition)
            if timeline is None:
                raise ConfigurationError(
                    f"unknown partition {component.partition!r}"
                )
            if not timeline.fits(
                start, duration, component.nodes, component.gres
            ):
                return False
        return True

    def earliest_start(
        self, components: List[JobComponent], duration: float
    ) -> Optional[float]:
        """Earliest time all components fit for ``duration``, or None."""
        candidates = {self.now}
        for component in components:
            timeline = self.partitions.get(component.partition)
            if timeline is None:
                raise ConfigurationError(
                    f"unknown partition {component.partition!r}"
                )
            candidates.update(
                t for t in timeline.breakpoints() if t >= self.now
            )
        for candidate in sorted(candidates):
            if candidate - self.now > HORIZON:
                break
            if self.fits_at(components, candidate, duration):
                return candidate
        return None

    def occupy(
        self, components: List[JobComponent], start: float, duration: float
    ) -> None:
        """Record a job/reservation across all its components."""
        for component in components:
            self.partitions[component.partition].occupy(
                start, start + duration, component.nodes, component.gres
            )


class SchedulingPolicy:
    """Interface: pick which pending jobs start *now*."""

    name = "abstract"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        """Jobs (subset of ``pending``, in start order) to launch now.

        ``pending`` is already sorted by descending priority.
        """
        raise NotImplementedError


def _starts_now(timeline: ClusterTimeline, job: Job) -> bool:
    return timeline.fits_at(
        job.spec.components, timeline.now, job.spec.walltime_limit
    )


class FIFOPolicy(SchedulingPolicy):
    """Strict first-come-first-served: never schedules around a blocker."""

    name = "fifo"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = ClusterTimeline(cluster, now)
        started: List[Job] = []
        for job in pending:
            if _starts_now(timeline, job):
                timeline.occupy(
                    job.spec.components, now, job.spec.walltime_limit
                )
                started.append(job)
            else:
                break
        return started


class EasyBackfillPolicy(SchedulingPolicy):
    """EASY (aggressive) backfill: one reservation for the head blocker.

    Jobs behind the blocked head may start now only if doing so does
    not push back the head's earliest start time.
    """

    name = "easy"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = ClusterTimeline(cluster, now)
        started: List[Job] = []
        head: Optional[Job] = None
        head_start: Optional[float] = None
        for job in pending:
            duration = job.spec.walltime_limit
            if head is None:
                if _starts_now(timeline, job):
                    timeline.occupy(job.spec.components, now, duration)
                    started.append(job)
                else:
                    head = job
                    head_start = timeline.earliest_start(
                        job.spec.components, duration
                    )
                continue
            # Backfill candidate: must fit now and not delay the head.
            if not _starts_now(timeline, job):
                continue
            if head_start is None:
                # Head can never start (oversized job): don't let it
                # block the queue, backfill freely.
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
                continue
            trial = ClusterTimeline(cluster, now)
            for other in started:
                trial.occupy(
                    other.spec.components, now, other.spec.walltime_limit
                )
            trial.occupy(job.spec.components, now, duration)
            new_head_start = trial.earliest_start(
                head.spec.components, head.spec.walltime_limit
            )
            if new_head_start is not None and new_head_start <= head_start:
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
        return started


class ConservativeBackfillPolicy(SchedulingPolicy):
    """Conservative backfill: every queued job gets a reservation.

    A job may only start now if doing so respects the reservations of
    every higher-priority job, which the incremental timeline enforces
    by construction.
    """

    name = "conservative"

    def select(
        self, pending: List[Job], cluster: Cluster, now: float
    ) -> List[Job]:
        timeline = ClusterTimeline(cluster, now)
        started: List[Job] = []
        for job in pending:
            duration = job.spec.walltime_limit
            start = timeline.earliest_start(job.spec.components, duration)
            if start is None:
                continue  # unschedulable within horizon; skip
            timeline.occupy(job.spec.components, start, duration)
            if start <= now:
                started.append(job)
        return started


#: Registry for CLI/experiment configuration.
POLICIES: Dict[str, type] = {
    policy.name: policy
    for policy in (FIFOPolicy, EasyBackfillPolicy, ConservativeBackfillPolicy)
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
