"""Node failure injection.

An optional background process that takes nodes down according to an
exponential mean-time-between-failures model and repairs them after an
exponential repair time.  Used by robustness tests and the backfill
ablation: failures shorten availability windows and stress reservation
logic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.node import Node, NodeState
from repro.errors import ConfigurationError
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams


class FailureInjector:
    """Randomly fails and repairs nodes of a node pool.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    nodes:
        Node pool subject to failures.
    mtbf:
        Mean time between failures, *per node*, in simulated seconds.
    mean_repair_time:
        Mean node repair duration in simulated seconds.
    streams:
        Random stream factory (a dedicated ``"failures"`` stream is used).
    on_failure:
        Optional callback invoked as ``on_failure(node, evicted_job_id)``
        whenever a node goes down, so the scheduler can requeue the
        evicted job.
    """

    def __init__(
        self,
        kernel: Kernel,
        nodes: List[Node],
        mtbf: float,
        mean_repair_time: float,
        streams: RandomStreams,
        on_failure: Optional[Callable[[Node, Optional[str]], None]] = None,
    ) -> None:
        if mtbf <= 0 or mean_repair_time <= 0:
            raise ConfigurationError("mtbf and repair time must be positive")
        self.kernel = kernel
        self.nodes = list(nodes)
        self.mtbf = mtbf
        self.mean_repair_time = mean_repair_time
        self.rng = streams.stream("failures")
        self.on_failure = on_failure
        self.failure_count = 0
        self.repair_count = 0
        self._processes = [
            kernel.process(self._node_life(node), name=f"failures:{node.name}")
            for node in self.nodes
        ]

    def _node_life(self, node: Node):
        """Fail/repair loop for one node."""
        while True:
            uptime = float(self.rng.exponential(self.mtbf))
            yield self.kernel.timeout(uptime)
            if node.state == NodeState.DOWN:
                continue
            evicted = node.mark_down()
            self.failure_count += 1
            if self.on_failure is not None:
                self.on_failure(node, evicted)
            repair = float(self.rng.exponential(self.mean_repair_time))
            yield self.kernel.timeout(repair)
            node.mark_up()
            self.repair_count += 1

    def __repr__(self) -> str:
        return (
            f"<FailureInjector nodes={len(self.nodes)} "
            f"failures={self.failure_count} repairs={self.repair_count}>"
        )
