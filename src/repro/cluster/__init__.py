"""HPC cluster substrate: nodes, partitions, allocations, failures."""

from repro.cluster.allocation import Allocation
from repro.cluster.builders import (
    CLASSICAL_PARTITION,
    QUANTUM_PARTITION,
    build_hpcqc_cluster,
    make_nodes,
    make_qpu_node,
)
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.node import GresInstance, Node, NodeState
from repro.cluster.partition import Partition

__all__ = [
    "Allocation",
    "CLASSICAL_PARTITION",
    "Cluster",
    "FailureInjector",
    "GresInstance",
    "Node",
    "NodeState",
    "Partition",
    "QUANTUM_PARTITION",
    "build_hpcqc_cluster",
    "make_nodes",
    "make_qpu_node",
]
