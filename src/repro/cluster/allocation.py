"""Allocation records: which nodes/gres a job component holds, and when.

An :class:`Allocation` is created by the cluster when a job component
starts and is the job's handle for releasing resources (in whole or, for
malleable jobs, in part).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import GresInstance, Node
from repro.errors import AllocationError


class Allocation:
    """Resources granted to one job component."""

    def __init__(
        self,
        job_id: str,
        partition_name: str,
        nodes: List[Node],
        gres: List[GresInstance],
        start_time: float,
        walltime: Optional[float],
    ) -> None:
        self.job_id = job_id
        self.partition_name = partition_name
        self.nodes = list(nodes)
        self.gres = list(gres)
        self.start_time = start_time
        self.walltime = walltime
        self.end_time: Optional[float] = None
        self.released = False

    # -- inspection -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes]

    @property
    def expected_end(self) -> float:
        """Scheduler's estimate of when this allocation frees its nodes."""
        if self.walltime is None:
            return float("inf")
        return self.start_time + self.walltime

    def gres_devices(self, gres_type: str) -> List[object]:
        """Backing device objects of the granted ``gres_type`` units."""
        return [
            g.device
            for g in self.gres
            if g.gres_type == gres_type and g.device is not None
        ]

    def gres_counts(self) -> Dict[str, int]:
        """Granted units per gres type."""
        counts: Dict[str, int] = {}
        for instance in self.gres:
            counts[instance.gres_type] = counts.get(instance.gres_type, 0) + 1
        return counts

    # -- mutation (used by the cluster and by malleability) ---------------------

    def remove_nodes(self, nodes: List[Node]) -> None:
        """Drop ``nodes`` from this allocation (they must belong to it)."""
        for node in nodes:
            if node not in self.nodes:
                raise AllocationError(
                    f"node {node.name!r} is not part of allocation for "
                    f"job {self.job_id!r}"
                )
        for node in nodes:
            self.nodes.remove(node)

    def add_nodes(self, nodes: List[Node]) -> None:
        """Attach freshly-allocated ``nodes`` to this allocation."""
        self.nodes.extend(nodes)

    def __repr__(self) -> str:
        state = "released" if self.released else "active"
        return (
            f"<Allocation job={self.job_id} partition={self.partition_name} "
            f"nodes={self.node_count} gres={len(self.gres)} {state}>"
        )
