"""The cluster: partitions, allocation bookkeeping and utilisation monitors.

The cluster is passive with respect to time — the batch scheduler
decides *when* to allocate; the cluster checks feasibility, mutates node
state and maintains time-weighted busy-node counters that the metrics
layer turns into utilisation figures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.allocation import Allocation
from repro.cluster.node import Node
from repro.cluster.partition import Partition
from repro.errors import AllocationError, ConfigurationError
from repro.sim.kernel import Kernel
from repro.sim.monitor import TimeWeightedValue


class Cluster:
    """A set of partitions plus allocation bookkeeping."""

    def __init__(
        self,
        kernel: Kernel,
        partitions: List[Partition],
        record_history: bool = False,
    ) -> None:
        if not partitions:
            raise ConfigurationError("a cluster needs at least one partition")
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate partition names")
        self.kernel = kernel
        self.partitions: Dict[str, Partition] = {p.name: p for p in partitions}
        #: Active allocations keyed by (job_id, partition, serial).
        self.allocations: List[Allocation] = []
        #: Monotone counter bumped on every allocation mutation; lets
        #: incremental consumers (timeline caches) detect missed deltas.
        self.allocation_version = 0
        #: Monotone counter bumped whenever any node's capacity class
        #: changes (up <-> draining <-> down).  Capacity consumers
        #: (timeline caches) compare versions instead of rescanning
        #: every node state per pass.
        self.node_state_version = 0
        for partition in partitions:
            for node in partition.nodes:
                node._state_listener = self._on_node_state_change
        #: Observers of allocation deltas, called synchronously with
        #: ``(kind, allocation, node_count)`` where kind is one of
        #: ``allocate``/``release``/``shrink``/``grow``.
        self._allocation_listeners: List[
            Callable[[str, Allocation, int], None]
        ] = []
        #: Whether the busy counters keep full step histories
        #: (scenario monitoring opt-in; off on the hot path by default).
        self.record_history = record_history
        #: Per-partition time-weighted busy-node counters.
        self.busy_nodes: Dict[str, TimeWeightedValue] = {
            p.name: TimeWeightedValue(
                kernel, 0.0, record_history=record_history
            )
            for p in partitions
        }
        #: Per-partition, per-gres-type busy-unit counters.
        self.busy_gres: Dict[str, Dict[str, TimeWeightedValue]] = {}
        for partition in partitions:
            gres_types = sorted(
                {t for node in partition.nodes for t in node.gres_types()}
            )
            self.busy_gres[partition.name] = {
                t: TimeWeightedValue(
                    kernel, 0.0, record_history=record_history
                )
                for t in gres_types
            }

    # -- queries ------------------------------------------------------------------

    def partition(self, name: str) -> Partition:
        try:
            return self.partitions[name]
        except KeyError:
            raise ConfigurationError(f"unknown partition {name!r}") from None

    def total_nodes(self) -> int:
        return sum(p.node_count for p in self.partitions.values())

    def can_allocate(
        self,
        partition_name: str,
        node_count: int,
        gres_request: Optional[Dict[str, int]] = None,
    ) -> bool:
        """Whether the request could start *right now*."""
        partition = self.partition(partition_name)
        return partition.find_nodes(node_count, gres_request) is not None

    def active_allocations(
        self, partition_name: Optional[str] = None
    ) -> List[Allocation]:
        """Unreleased allocations, optionally filtered by partition."""
        return [
            a
            for a in self.allocations
            if not a.released
            and (partition_name is None or a.partition_name == partition_name)
        ]

    # -- allocation delta feed ---------------------------------------------------

    def add_allocation_listener(
        self, listener: Callable[[str, Allocation, int], None]
    ) -> None:
        """Subscribe to allocation deltas (see ``_notify`` kinds)."""
        self._allocation_listeners.append(listener)

    def remove_allocation_listener(
        self, listener: Callable[[str, Allocation, int], None]
    ) -> None:
        """Unsubscribe; unknown listeners are ignored."""
        try:
            self._allocation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, kind: str, allocation: Allocation, count: int) -> None:
        self.allocation_version += 1
        for listener in self._allocation_listeners:
            listener(kind, allocation, count)

    def _on_node_state_change(self) -> None:
        self.node_state_version += 1

    # -- allocate / release ----------------------------------------------------------

    def allocate(
        self,
        job_id: str,
        partition_name: str,
        node_count: int,
        gres_request: Optional[Dict[str, int]] = None,
        walltime: Optional[float] = None,
    ) -> Allocation:
        """Grant ``node_count`` nodes (+gres) in ``partition_name``.

        Raises :class:`AllocationError` if the request cannot be
        satisfied at the current instant.
        """
        partition = self.partition(partition_name)
        nodes = partition.find_nodes(node_count, gres_request)
        if nodes is None:
            raise AllocationError(
                f"partition {partition_name!r} cannot satisfy "
                f"{node_count} nodes + gres {gres_request!r} for job {job_id!r}"
            )
        granted = self._grant_on_nodes(job_id, nodes, gres_request)
        allocation = Allocation(
            job_id=job_id,
            partition_name=partition_name,
            nodes=nodes,
            gres=granted,
            start_time=self.kernel.now,
            walltime=walltime,
        )
        self.allocations.append(allocation)
        self._account(partition_name, len(nodes), allocation.gres_counts(), +1)
        self._notify("allocate", allocation, len(nodes))
        return allocation

    def _grant_on_nodes(self, job_id, nodes, gres_request):
        """Allocate ``nodes``, spreading the job-total gres request."""
        remaining = dict(gres_request or {})
        granted = []
        for node in nodes:
            per_node: Dict[str, int] = {}
            for gres_type in list(remaining):
                if remaining[gres_type] <= 0:
                    continue
                take = min(remaining[gres_type], len(node.free_gres(gres_type)))
                if take > 0:
                    per_node[gres_type] = take
                    remaining[gres_type] -= take
            granted.extend(node.allocate(job_id, per_node))
        unmet = {t: c for t, c in remaining.items() if c > 0}
        if unmet:
            # Roll back: release everything we just took.
            for node in nodes:
                if node.allocated_to == job_id:
                    node.release(job_id)
            raise AllocationError(
                f"gres request unsatisfiable on chosen nodes: {unmet!r}"
            )
        return granted

    def release(self, allocation: Allocation) -> None:
        """Return every node of ``allocation`` to its partition."""
        if allocation.released:
            raise AllocationError(
                f"allocation for job {allocation.job_id!r} already released"
            )
        for node in allocation.nodes:
            node.release(allocation.job_id)
        allocation.released = True
        allocation.end_time = self.kernel.now
        self._account(
            allocation.partition_name,
            len(allocation.nodes),
            allocation.gres_counts(),
            -1,
        )
        self._notify("release", allocation, len(allocation.nodes))

    def shrink(self, allocation: Allocation, count: int) -> List[Node]:
        """Release ``count`` nodes from a live allocation (malleability).

        Nodes *without* allocated gres are preferred so a shrinking
        hybrid job keeps its device-bearing nodes.  Returns the released
        nodes.
        """
        if allocation.released:
            raise AllocationError("cannot shrink a released allocation")
        if count <= 0 or count > len(allocation.nodes):
            raise AllocationError(
                f"shrink count {count} out of range for allocation of "
                f"{len(allocation.nodes)} nodes"
            )
        job_id = allocation.job_id
        gres_nodes = {g.node for g in allocation.gres if g.node is not None}
        candidates = sorted(
            allocation.nodes,
            key=lambda n: (n in gres_nodes, n.name),
        )
        victims = candidates[:count]
        for node in victims:
            node.release(job_id)
        allocation.remove_nodes(victims)
        self._account(allocation.partition_name, len(victims), {}, -1)
        self._notify("shrink", allocation, len(victims))
        return victims

    def grow(self, allocation: Allocation, count: int) -> List[Node]:
        """Attach ``count`` additional nodes to a live allocation.

        Raises :class:`AllocationError` if the partition cannot supply
        them right now.
        """
        if allocation.released:
            raise AllocationError("cannot grow a released allocation")
        partition = self.partition(allocation.partition_name)
        nodes = partition.find_nodes(count)
        if nodes is None:
            raise AllocationError(
                f"partition {allocation.partition_name!r} cannot supply "
                f"{count} extra nodes"
            )
        for node in nodes:
            node.allocate(allocation.job_id)
        allocation.add_nodes(nodes)
        self._account(allocation.partition_name, len(nodes), {}, +1)
        self._notify("grow", allocation, len(nodes))
        return nodes

    # -- metrics -----------------------------------------------------------------

    def _account(
        self,
        partition_name: str,
        node_delta: int,
        gres_counts: Dict[str, int],
        sign: int,
    ) -> None:
        self.busy_nodes[partition_name].add(sign * node_delta)
        for gres_type, count in gres_counts.items():
            monitors = self.busy_gres[partition_name]
            if gres_type not in monitors:
                monitors[gres_type] = TimeWeightedValue(
                    self.kernel, 0.0, record_history=self.record_history
                )
            monitors[gres_type].add(sign * count)

    def node_utilisation(self, partition_name: str) -> float:
        """Time-averaged fraction of the partition's nodes allocated."""
        partition = self.partition(partition_name)
        if partition.node_count == 0:
            return 0.0
        return (
            self.busy_nodes[partition_name].time_average()
            / partition.node_count
        )

    def gres_allocation_fraction(
        self, partition_name: str, gres_type: str
    ) -> float:
        """Time-averaged fraction of gres units *allocated* (not used)."""
        capacity = self.partition(partition_name).gres_capacity(gres_type)
        if capacity == 0:
            return 0.0
        monitor = self.busy_gres[partition_name].get(gres_type)
        if monitor is None:
            return 0.0
        return monitor.time_average() / capacity

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p.name}:{p.available_count()}/{p.node_count}"
            for p in self.partitions.values()
        )
        return f"<Cluster {parts}>"
