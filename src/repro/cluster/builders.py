"""Convenience builders for common cluster shapes.

Every experiment in the paper uses the same basic topology — a
``classical`` CPU partition plus a ``quantum`` partition whose nodes
expose QPU gres (Listing 1) — so we provide one canonical builder.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import GresInstance, Node
from repro.cluster.partition import Partition
from repro.sim.kernel import Kernel

#: Default partition names matching the paper's Listing 1.
CLASSICAL_PARTITION = "classical"
QUANTUM_PARTITION = "quantum"


def make_nodes(
    prefix: str, count: int, cores: int = 64, memory_gb: float = 256.0
) -> List[Node]:
    """``count`` homogeneous nodes named ``{prefix}{index:04d}``."""
    return [
        Node(f"{prefix}{index:04d}", cores=cores, memory_gb=memory_gb)
        for index in range(count)
    ]


def make_qpu_node(
    name: str,
    devices: Sequence[Any],
    gres_type: str = "qpu",
    cores: int = 16,
) -> Node:
    """A quantum-partition front-end node exposing ``devices`` as gres.

    Each device (usually a :class:`repro.quantum.qpu.QPU` or a virtual
    QPU lease broker) becomes one gres unit bound to that device.
    """
    gres = [
        GresInstance(gres_type, index, device=device)
        for index, device in enumerate(devices)
    ]
    return Node(name, cores=cores, memory_gb=64.0, gres=gres)


def build_hpcqc_cluster(
    kernel: Kernel,
    classical_nodes: int,
    qpu_devices: Sequence[Any],
    qpus_per_node: int = 1,
    classical_max_walltime: Optional[float] = None,
    quantum_max_walltime: Optional[float] = None,
    cores_per_node: int = 64,
    record_history: bool = False,
) -> Cluster:
    """Canonical two-partition HPC-QC cluster (paper Listing 1 topology).

    Parameters
    ----------
    classical_nodes:
        Number of CPU nodes in the ``classical`` partition.
    qpu_devices:
        Device objects to expose as ``qpu`` gres; they are packed onto
        quantum front-end nodes ``qpus_per_node`` at a time.
    """
    classical = Partition(
        CLASSICAL_PARTITION,
        make_nodes("cn", classical_nodes, cores=cores_per_node),
        max_walltime=classical_max_walltime,
    )
    devices = list(qpu_devices)
    quantum_nodes: List[Node] = []
    for index in range(0, max(len(devices), 1), qpus_per_node):
        chunk = devices[index : index + qpus_per_node]
        quantum_nodes.append(make_qpu_node(f"qn{index // qpus_per_node:02d}", chunk))
    quantum = Partition(
        QUANTUM_PARTITION, quantum_nodes, max_walltime=quantum_max_walltime
    )
    return Cluster(
        kernel, [classical, quantum], record_history=record_history
    )
