"""Compute-node model.

Nodes are the unit of allocation (SLURM ``--nodes`` semantics: whole
nodes are granted to jobs).  A node carries a core count and memory for
bookkeeping, and optionally *generic resources* (gres) — the mechanism
SLURM uses, and the paper adopts (``--gres=qpu:1``), to expose devices
such as QPUs to the batch system.  A gres unit may be *bound* to an
arbitrary device object (e.g. a :class:`repro.quantum.qpu.QPU`), which
is how an allocated job obtains a handle to the physical device behind
its grant.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.errors import AllocationError, ConfigurationError


class NodeState(enum.Enum):
    """Lifecycle state of a compute node."""

    IDLE = "idle"
    ALLOCATED = "allocated"
    DOWN = "down"
    DRAINING = "draining"


class GresInstance:
    """One schedulable unit of a generic resource on a node.

    Parameters
    ----------
    gres_type:
        Resource type name, e.g. ``"qpu"`` or ``"gpu"``.
    index:
        Unit index within the node (0-based).
    device:
        Optional backing device object handed to the job that gets this
        unit (e.g. a QPU model or a virtual-QPU lease broker).
    """

    __slots__ = ("gres_type", "index", "device", "node", "allocated_to")

    def __init__(
        self, gres_type: str, index: int, device: Any = None
    ) -> None:
        self.gres_type = gres_type
        self.index = index
        self.device = device
        #: Back-reference set when the instance is attached to a node.
        self.node: Optional["Node"] = None
        #: Job id currently holding this unit, if any.
        self.allocated_to: Optional[str] = None

    @property
    def is_free(self) -> bool:
        return self.allocated_to is None

    def __repr__(self) -> str:
        owner = f" -> {self.allocated_to}" if self.allocated_to else ""
        return f"<Gres {self.gres_type}:{self.index}{owner}>"


class Node:
    """A whole-node-allocatable compute node."""

    def __init__(
        self,
        name: str,
        cores: int = 64,
        memory_gb: float = 256.0,
        gres: Optional[List[GresInstance]] = None,
    ) -> None:
        if cores <= 0:
            raise ConfigurationError(f"node {name!r}: cores must be positive")
        if memory_gb <= 0:
            raise ConfigurationError(f"node {name!r}: memory must be positive")
        self.name = name
        self.cores = cores
        self.memory_gb = memory_gb
        self.state = NodeState.IDLE
        #: Job id currently holding the node, if any.
        self.allocated_to: Optional[str] = None
        #: Drain requested while allocated: the running job finishes,
        #: then release parks the node in ``DRAINING`` instead of IDLE.
        self._drain_pending = False
        #: Set by the owning cluster: called (with no arguments) when
        #: the node's *capacity class* changes (up / draining / down),
        #: i.e. exactly when partition capacity figures can change.
        self._state_listener: Optional[Callable[[], None]] = None
        self._gres: Dict[str, List[GresInstance]] = {}
        for instance in gres or []:
            instance.node = self
            self._gres.setdefault(instance.gres_type, []).append(instance)

    @staticmethod
    def _capacity_class(state: NodeState) -> int:
        """Partition capacity depends only on this coarsening of state:
        IDLE/ALLOCATED nodes are usable, DRAINING ones keep their gres
        capacity but not their node slot, DOWN ones contribute nothing."""
        if state in (NodeState.IDLE, NodeState.ALLOCATED):
            return 0
        if state == NodeState.DRAINING:
            return 1
        return 2

    def _transition(self, new_state: NodeState) -> None:
        """Change state, notifying the cluster on capacity changes."""
        old_class = self._capacity_class(self.state)
        self.state = new_state
        if (
            self._state_listener is not None
            and old_class != self._capacity_class(new_state)
        ):
            self._state_listener()

    # -- gres ----------------------------------------------------------------

    def gres_count(self, gres_type: str) -> int:
        """Total units of ``gres_type`` on this node."""
        return len(self._gres.get(gres_type, []))

    def free_gres(self, gres_type: str) -> List[GresInstance]:
        """Unallocated units of ``gres_type``."""
        return [g for g in self._gres.get(gres_type, []) if g.is_free]

    def gres_types(self) -> List[str]:
        """All gres type names present on the node."""
        return list(self._gres)

    def all_gres(self, gres_type: str) -> List[GresInstance]:
        """All units of ``gres_type`` regardless of allocation state."""
        return list(self._gres.get(gres_type, []))

    # -- allocation ------------------------------------------------------------

    @property
    def is_available(self) -> bool:
        """Whether the node can be handed to a new job right now."""
        return self.state == NodeState.IDLE and self.allocated_to is None

    def allocate(self, job_id: str, gres_request: Optional[Dict[str, int]] = None
                 ) -> List[GresInstance]:
        """Grant the node (and ``gres_request`` units) to ``job_id``.

        Returns the granted gres instances.  Raises
        :class:`AllocationError` if the node or the gres are busy.
        """
        if not self.is_available:
            raise AllocationError(
                f"node {self.name!r} not available (state={self.state}, "
                f"holder={self.allocated_to!r})"
            )
        granted: List[GresInstance] = []
        for gres_type, count in (gres_request or {}).items():
            free = self.free_gres(gres_type)
            if len(free) < count:
                raise AllocationError(
                    f"node {self.name!r}: requested {count} x {gres_type!r}, "
                    f"only {len(free)} free"
                )
            granted.extend(free[:count])
        self.state = NodeState.ALLOCATED
        self.allocated_to = job_id
        for instance in granted:
            instance.allocated_to = job_id
        return granted

    def release(self, job_id: str) -> None:
        """Return the node (and its gres units) held by ``job_id``."""
        if self.allocated_to != job_id:
            raise AllocationError(
                f"node {self.name!r} is not held by job {job_id!r}"
            )
        self.allocated_to = None
        if self.state == NodeState.ALLOCATED:
            if self._drain_pending:
                self._drain_pending = False
                self._transition(NodeState.DRAINING)
            else:
                self.state = NodeState.IDLE
        for instances in self._gres.values():
            for instance in instances:
                if instance.allocated_to == job_id:
                    instance.allocated_to = None

    # -- failure/drain -----------------------------------------------------------

    def mark_down(self) -> Optional[str]:
        """Take the node down; returns the id of the evicted job, if any."""
        evicted = self.allocated_to
        self._drain_pending = False
        self._transition(NodeState.DOWN)
        self.allocated_to = None
        for instances in self._gres.values():
            for instance in instances:
                instance.allocated_to = None
        return evicted

    def mark_up(self) -> None:
        """Bring a down/draining node back to service.

        Also cancels a pending drain on an allocated node (the undrain
        action), so the node returns to IDLE on release as usual.
        """
        self._drain_pending = False
        if self.state in (NodeState.DOWN, NodeState.DRAINING):
            self._transition(NodeState.IDLE)

    def drain(self) -> None:
        """Stop accepting new jobs; current job may finish.

        An idle node drains immediately; an allocated node keeps
        running its job and transitions to ``DRAINING`` when the job's
        allocation is released.
        """
        if self.state == NodeState.IDLE:
            self._transition(NodeState.DRAINING)
        elif self.state == NodeState.ALLOCATED:
            self._drain_pending = True

    def __repr__(self) -> str:
        return f"<Node {self.name} {self.state.value}>"
