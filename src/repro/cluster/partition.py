"""Partitions: named groups of interchangeable nodes.

The paper's Listing 1 uses two partitions, ``classical`` and
``quantum``; the quantum partition's nodes expose QPUs as gres.  Nodes
inside one partition are treated as homogeneous and interchangeable for
scheduling purposes, which matches how backfill reservations are
computed on production systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import Node, NodeState
from repro.errors import ConfigurationError


class Partition:
    """A named pool of homogeneous nodes with a walltime limit."""

    def __init__(
        self,
        name: str,
        nodes: List[Node],
        max_walltime: Optional[float] = None,
        priority_weight: float = 0.0,
    ) -> None:
        if not name:
            raise ConfigurationError("partition name must be non-empty")
        if not nodes:
            raise ConfigurationError(f"partition {name!r} has no nodes")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"partition {name!r} contains duplicate node names"
            )
        self.name = name
        self.nodes = list(nodes)
        #: Upper bound on job walltime in this partition (None = unlimited).
        self.max_walltime = max_walltime
        #: Additive priority contribution for jobs in this partition.
        self.priority_weight = priority_weight

    # -- capacity queries -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def available_nodes(self) -> List[Node]:
        """Nodes that can be allocated right now."""
        return [node for node in self.nodes if node.is_available]

    def usable_node_count(self) -> int:
        """Nodes not DOWN/DRAINING (allocated ones count as usable)."""
        return sum(
            1
            for node in self.nodes
            if node.state in (NodeState.IDLE, NodeState.ALLOCATED)
        )

    def available_count(self) -> int:
        return len(self.available_nodes())

    def gres_types(self) -> List[str]:
        """All gres type names present on any node, sorted."""
        types = set()
        for node in self.nodes:
            types.update(node.gres_types())
        return sorted(types)

    def gres_capacity(self, gres_type: str) -> int:
        """Total gres units of ``gres_type`` across usable nodes."""
        return sum(
            node.gres_count(gres_type)
            for node in self.nodes
            if node.state != NodeState.DOWN
        )

    def free_gres_count(self, gres_type: str) -> int:
        """Free gres units across currently-available nodes."""
        return sum(
            len(node.free_gres(gres_type)) for node in self.available_nodes()
        )

    def find_nodes(
        self, count: int, gres_request: Optional[Dict[str, int]] = None
    ) -> Optional[List[Node]]:
        """Pick ``count`` available nodes jointly satisfying ``gres_request``.

        The gres request is a *per-job-component* total: units may be
        spread across the chosen nodes (as SLURM does for
        ``--gres``-per-job style requests).  Returns ``None`` when the
        request cannot be satisfied right now.

        Selection is greedy: nodes with the most free units of the
        requested gres types come first so device-bearing nodes are
        preferred for device-requesting jobs, then name order for
        determinism.
        """
        available = self.available_nodes()
        if len(available) < count:
            return None
        request = dict(gres_request or {})
        if not request:
            return sorted(available, key=lambda n: n.name)[:count]

        def gres_richness(node: Node) -> int:
            return sum(len(node.free_gres(t)) for t in request)

        ordered = sorted(
            available, key=lambda n: (-gres_richness(n), n.name)
        )
        chosen = ordered[:count]
        for gres_type, needed in request.items():
            free_total = sum(len(n.free_gres(gres_type)) for n in chosen)
            if free_total < needed:
                return None
        return chosen

    def __repr__(self) -> str:
        return (
            f"<Partition {self.name} nodes={self.node_count} "
            f"free={self.available_count()}>"
        )
