"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation kernel."""


class SchedulingError(ReproError):
    """A batch-scheduler invariant was violated (bad job spec, etc.)."""


class AllocationError(SchedulingError):
    """A resource allocation could not be created or released."""


class JobRejectedError(SchedulingError):
    """A job specification was rejected at submission time."""


class QuantumDeviceError(ReproError):
    """A quantum device model was used inconsistently."""


class CalibrationError(QuantumDeviceError):
    """A calibration cycle failed or was requested in a bad state."""


class WorkflowError(ReproError):
    """A workflow DAG was malformed or executed inconsistently."""


class MalleabilityError(ReproError):
    """A malleable job violated the resize-negotiation protocol."""


class WorkloadError(ReproError):
    """A workload description or trace could not be generated/parsed."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid values."""
