"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation kernel."""


class SchedulingError(ReproError):
    """A batch-scheduler invariant was violated (bad job spec, etc.)."""


class AllocationError(SchedulingError):
    """A resource allocation could not be created or released."""


class JobRejectedError(SchedulingError):
    """A job specification was rejected at submission time."""


class QuantumDeviceError(ReproError):
    """A quantum device model was used inconsistently."""


class CalibrationError(QuantumDeviceError):
    """A calibration cycle failed or was requested in a bad state."""


class WorkflowError(ReproError):
    """A workflow DAG was malformed or executed inconsistently."""


class MalleabilityError(ReproError):
    """A malleable job violated the resize-negotiation protocol."""


class WorkloadError(ReproError):
    """A workload description or trace could not be generated/parsed."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid values."""


class SweepError(ReproError):
    """The sweep execution engine could not complete a campaign."""


class PointFailedError(SweepError):
    """A sweep point exhausted its failure policy (``on_error="raise"``).

    Carries the point's terminal :class:`PointOutcome` (when available)
    as :attr:`outcome`, so callers can inspect status, attempt count
    and the recorded error text without parsing the message.
    """

    def __init__(self, message: str, outcome=None) -> None:
        super().__init__(message)
        self.outcome = outcome


class ChaosError(ReproError):
    """A deterministic fault injected by the chaos harness.

    Raised (never caught) by :class:`repro.experiments.resilience.
    ChaosSpec` inside a worker, so recovery paths are exercised by a
    recognisable, picklable exception type.
    """


class JournalLockedError(ReproError):
    """Another live process holds the journal's exclusive lock.

    Two writers appending to the same journal file would silently
    interleave records and corrupt resume state; the journal refuses to
    open instead.  A lock held by a process that was SIGKILL'd is
    released by the kernel automatically, so crashed campaigns never
    need manual lock cleanup.
    """


class StoreError(ReproError):
    """The durable result store could not complete an operation."""


class StoreLockedError(StoreError, JournalLockedError):
    """Another live process holds the store's exclusive writer lock.

    Subclasses :class:`JournalLockedError` because a store-backed run
    journal surfaces writer contention through the same ``acquire()``
    seam the JSONL journals use — callers catching the journal error
    keep working unchanged.  Like the journal lock, the store lock is
    ``flock``-based: the kernel releases it when its holder dies, so a
    SIGKILL'd writer never leaves a stale lock behind.
    """


class UnknownSubmissionError(StoreError):
    """A submission id does not exist in the store.

    Distinguished from the base :class:`StoreError` so the HTTP
    service can map it to a 404 instead of a generic 500 — existing
    callers catching :class:`StoreError` keep working unchanged.
    """


class LeaseError(StoreError):
    """A submission lease operation violated the claim protocol.

    Raised when a worker tries to execute or release a submission it
    does not currently hold — the fencing that keeps a worker whose
    lease expired (and was re-claimed by a live peer) from flipping
    the submission's terminal state twice.
    """


class LeaseLostError(LeaseError):
    """The worker's lease expired mid-run and another claim fenced it.

    The in-flight sweep is aborted after its current point commits;
    every committed point stays committed, and whichever worker now
    holds the lease resumes with only the uncommitted remainder.
    """


class WorkerDrainError(ReproError):
    """A worker was asked to drain while a submission was in flight.

    Control-flow exception: the worker loop raises it from the sweep's
    ``on_outcome`` hook (after the current point committed), releases
    the lease back to ``pending`` and exits cleanly — the submission
    is picked up by the next worker with zero committed-point loss.
    """


class ServiceError(ReproError):
    """The campaign service (HTTP layer or worker pool) failed."""


class StoreCorruptError(StoreError):
    """A store file failed validation and was quarantined.

    Raised after the offending file (SQLite database or npz metric
    shard) has been renamed aside with a ``.corrupt`` suffix — the
    same quarantine contract as ``SweepCache.load``'s
    ``*.pkl.corrupt`` — so a reopen starts clean instead of crashing
    on (or silently trusting) mangled bytes.
    """


class StoreSchemaError(StoreError):
    """The store's schema version is newer than this code understands.

    Unlike corruption this is *not* quarantined: the data is fine,
    the code is old.  Upgrade the library or point it at a different
    store directory.
    """


class CampaignError(ReproError):
    """A campaign DAG could not run to completion.

    Raised when a stage exhausts its failure policy under
    ``on_error="raise"``, or when the campaign engine itself hits an
    unrecoverable condition.  Carries the terminal
    :class:`~repro.campaigns.journal.StageOutcome` (when available) as
    :attr:`outcome`.
    """

    def __init__(self, message: str, outcome=None) -> None:
        super().__init__(message)
        self.outcome = outcome
