"""repro — hybrid HPC-QC cluster scheduling simulator.

Reproduction of "Assessing the Elephant in the Room in Scheduling for
Current Hybrid HPC-QC Clusters" (Viviani et al., DSN 2025).

The package provides:

- :mod:`repro.sim` — a from-scratch discrete-event simulation kernel;
- :mod:`repro.cluster` — an HPC cluster substrate (nodes, partitions);
- :mod:`repro.quantum` — QPU technology/device models and a cloud
  access-queue model;
- :mod:`repro.scheduler` — a SLURM-like batch scheduler with
  heterogeneous jobs, generic resources (gres) and backfill;
- :mod:`repro.strategies` — the paper's four integration strategies
  (exclusive co-scheduling, loosely-coupled workflows, virtual QPUs,
  malleability) driving a common hybrid-application model;
- :mod:`repro.workloads` — synthetic hybrid workload and trace
  generation;
- :mod:`repro.metrics` — utilisation/wait/slowdown bookkeeping;
- :mod:`repro.experiments` — one regenerable experiment per paper
  figure/claim.
"""

from repro._version import __version__

__all__ = ["__version__"]
