"""Metrics, statistics and plain-text report rendering."""

from repro.metrics.collector import (
    FacilitySnapshot,
    StrategySummary,
    facility_snapshot,
    summarise,
)
from repro.metrics.report import (
    format_cell,
    format_duration,
    render_bars,
    render_markdown_table,
    render_series,
    render_table,
    summarise_records,
)
from repro.metrics.stats import (
    RunningStats,
    bootstrap_ci,
    bounded_slowdowns,
    geometric_mean,
    mean,
    median,
    ratio,
)

__all__ = [
    "FacilitySnapshot",
    "RunningStats",
    "StrategySummary",
    "bootstrap_ci",
    "bounded_slowdowns",
    "facility_snapshot",
    "format_cell",
    "format_duration",
    "geometric_mean",
    "mean",
    "median",
    "ratio",
    "render_bars",
    "render_markdown_table",
    "render_series",
    "render_table",
    "summarise",
    "summarise_records",
]
