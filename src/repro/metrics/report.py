"""Plain-text rendering of experiment results: tables and ASCII series.

Experiments print the same rows/series the paper's figures imply;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_duration(seconds: Optional[float]) -> str:
    """Human scale: '830 ms', '12.3 s', '5.2 min', '3.1 h'."""
    if seconds is None:
        return "-"
    magnitude = abs(seconds)
    if magnitude < 1.0:
        return f"{seconds * 1000:.3g} ms"
    if magnitude < 120.0:
        return f"{seconds:.3g} s"
    if magnitude < 2 * 3600.0:
        return f"{seconds / 60.0:.3g} min"
    return f"{seconds / 3600.0:.3g} h"


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Aligned monospace table."""
    cells = [[format_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigurationError(
                "row width does not match header count"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_cell(v) for v in row) + " |"
        )
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (the text stand-in for a figure)."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max((abs(v) for v in values), default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else int(round(abs(value) / peak * width))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)} | {bar} {format_cell(value)}{unit}"
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    x_values: Sequence[Any],
    series: Sequence[Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Multi-series table: one row per x value, one column per series."""
    if len(y_labels) != len(series):
        raise ConfigurationError("y_labels and series must align")
    for column in series:
        if len(column) != len(x_values):
            raise ConfigurationError("series length must match x_values")
    headers = [x_label, *y_labels]
    rows = [
        [x, *(column[i] for column in series)]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)


def summarise_records(records: List[Dict[str, Any]]) -> str:
    """Table from a list of uniform dicts (e.g. RunRecord.summary())."""
    if not records:
        return "(no records)"
    headers = list(records[0].keys())
    rows = [[record.get(h) for h in headers] for record in records]
    return render_table(headers, rows)
