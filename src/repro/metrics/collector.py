"""Aggregation of per-run records into per-strategy summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.metrics.stats import mean, median
from repro.strategies.base import Environment, RunRecord


@dataclass
class StrategySummary:
    """Aggregate of many :class:`RunRecord` under one strategy."""

    strategy: str
    runs: int
    mean_turnaround: float
    median_turnaround: float
    mean_queue_wait: float
    mean_classical_efficiency: float
    mean_qpu_efficiency: float
    total_qpu_busy: float
    total_classical_held_node_seconds: float
    makespan: float

    def as_row(self) -> List:
        return [
            self.strategy,
            self.runs,
            self.mean_turnaround,
            self.median_turnaround,
            self.mean_queue_wait,
            self.mean_classical_efficiency,
            self.mean_qpu_efficiency,
            self.makespan,
        ]

    @staticmethod
    def headers() -> List[str]:
        return [
            "strategy",
            "runs",
            "mean_turnaround_s",
            "median_turnaround_s",
            "mean_queue_wait_s",
            "classical_eff",
            "qpu_eff",
            "makespan_s",
        ]


def summarise(records: Sequence[RunRecord]) -> Dict[str, StrategySummary]:
    """Group records by strategy and compute aggregate metrics."""
    groups: Dict[str, List[RunRecord]] = {}
    for record in records:
        groups.setdefault(record.strategy, []).append(record)
    summaries: Dict[str, StrategySummary] = {}
    for strategy, group in groups.items():
        turnarounds = [
            r.turnaround for r in group if r.turnaround is not None
        ]
        ends = [r.end_time for r in group if r.end_time is not None]
        starts = [r.submit_time for r in group]
        summaries[strategy] = StrategySummary(
            strategy=strategy,
            runs=len(group),
            mean_turnaround=mean(turnarounds),
            median_turnaround=median(turnarounds),
            mean_queue_wait=mean([r.total_queue_wait for r in group]),
            mean_classical_efficiency=mean(
                [r.classical_efficiency for r in group]
            ),
            mean_qpu_efficiency=mean([r.qpu_efficiency for r in group]),
            total_qpu_busy=sum(r.qpu_busy_seconds for r in group),
            total_classical_held_node_seconds=sum(
                r.classical_held_node_seconds for r in group
            ),
            makespan=(max(ends) - min(starts)) if ends else 0.0,
        )
    return summaries


@dataclass
class FacilitySnapshot:
    """Facility-level utilisation over a simulation window."""

    classical_node_utilisation: float
    qpu_allocation_fraction: float
    qpu_busy_fraction: float
    qpu_calibration_fraction: float
    window_s: float


def facility_snapshot(
    env: Environment, since: float = 0.0, until: Optional[float] = None
) -> FacilitySnapshot:
    """Read facility-level utilisation monitors from an environment.

    ``qpu_allocation_fraction`` is the share of time the QPU gres was
    *allocated* to some job; ``qpu_busy_fraction`` the share it actually
    executed kernels — the gap between the two is the paper's wasted
    quantum resource.
    """
    end = until if until is not None else env.kernel.now
    window = max(end - since, 0.0)
    busy = mean([qpu.busy.time_average(end) for qpu in env.qpus])
    calibrating = mean(
        [qpu.calibrating.time_average(end) for qpu in env.qpus]
    )
    return FacilitySnapshot(
        classical_node_utilisation=env.cluster.node_utilisation("classical"),
        qpu_allocation_fraction=env.cluster.gres_allocation_fraction(
            "quantum", "qpu"
        ),
        qpu_busy_fraction=busy,
        qpu_calibration_fraction=calibrating,
        window_s=window,
    )
