"""Statistical helpers for experiment analysis."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

# Re-exported here because it is part of the public stats vocabulary;
# it lives in the sim layer (monitor) because metrics already depends
# on sim, not the other way around.
from repro.sim.monitor import RunningStats

__all__ = [
    "RunningStats",
    "bootstrap_ci",
    "bounded_slowdowns",
    "geometric_mean",
    "mean",
    "median",
    "ratio",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return math.fsum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean needs positive values")
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))


def bounded_slowdowns(
    turnarounds: Sequence[float],
    runtimes: Sequence[float],
    floor: float = 10.0,
) -> List[float]:
    """Bounded slowdown per job: ``max(1, T / max(r, floor))``."""
    if len(turnarounds) != len(runtimes):
        raise ConfigurationError("sequences must have equal length")
    return [
        max(1.0, t / max(r, floor))
        for t, r in zip(turnarounds, runtimes)
    ]


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    replicates: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if not values:
        return (0.0, 0.0)
    data = np.asarray(values, dtype=float)
    if len(data) == 1:
        return (float(data[0]), float(data[0]))
    rng = np.random.default_rng(seed)
    samples = rng.choice(data, size=(replicates, len(data)), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio: 0 when the denominator vanishes."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
