"""S4 (extension) — elastic QPU attach/detach.

The paper's Section 5 closes with "Future work will expand on these
concepts"; this strategy is the natural composition of its three
proposals, built on the scheduler's component-level malleability:

- like **malleability** (Fig 4), the application is a *single* batch
  job that queues once and renegotiates resources at phase boundaries —
  but the renegotiated resource is the *QPU component itself*;
- like a **workflow** (Fig 2), the scarce QPU is held only while a
  kernel actually needs it — but without paying a full queue wait per
  step, because the classical job (and its state) stays resident;
- like **VQPUs** (Fig 3), several tenants end up time-sharing one
  physical device — but through scheduler-mediated attach/detach
  rather than a virtualisation layer, so no gres reconfiguration of
  the facility is required.

The price is one scheduler negotiation (≥ one scheduling cycle) per
quantum phase, making the strategy attractive exactly when quantum
phases are *not* much shorter than the scheduling cycle — the gap
between VQPU territory (sub-cycle kernels) and workflow territory
(hour-scale steps).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.allocation import Allocation
from repro.scheduler.job import JobComponent, JobContext, JobSpec
from repro.strategies.application import HybridApplication, PhaseKind
from repro.strategies.base import (
    Environment,
    IntegrationStrategy,
    StrategyRun,
)

#: Default walltime safety factor: attach waits make runtime less
#: predictable than a rigid job's.
WALLTIME_SAFETY = 3.0


class ElasticQPUStrategy(IntegrationStrategy):
    """Single classical job that attaches/detaches its QPU per phase.

    Parameters
    ----------
    attach_overhead:
        Application-side cost per attach (context/program upload to
        the freshly granted device), seconds.
    quantum_nodes:
        Front-end nodes of the attached quantum component.
    """

    name = "elastic"

    def __init__(
        self,
        attach_overhead: float = 1.0,
        walltime: Optional[float] = None,
        walltime_safety: float = WALLTIME_SAFETY,
        quantum_nodes: int = 1,
    ) -> None:
        self.attach_overhead = attach_overhead
        self.walltime = walltime
        self.walltime_safety = walltime_safety
        self.quantum_nodes = quantum_nodes

    def _walltime_for(self, env: Environment, app: HybridApplication) -> float:
        if self.walltime is not None:
            return self.walltime
        technology = env.planning_technology(app)
        overheads = app.quantum_phase_count * self.attach_overhead
        return (
            app.ideal_makespan(technology) + overheads
        ) * self.walltime_safety

    def launch(self, env: Environment, app: HybridApplication) -> StrategyRun:
        record = self._new_record(env, app)
        done = env.kernel.event()
        walltime = self._walltime_for(env, app)
        strategy = self
        quantum_walltime = walltime  # per-attach lease cap

        def work(ctx: JobContext):
            record.start_time = ctx.now
            record.queue_waits.append(ctx.now - record.submit_time)
            attach_waits = []
            qpu_held = 0.0
            for phase in app.phases:
                if phase.kind == PhaseKind.CLASSICAL:
                    duration = app.classical_time(
                        phase, app.classical_nodes
                    )
                    if duration > 0:
                        yield ctx.timeout(duration)
                    record.classical_useful_node_seconds += (
                        duration * app.classical_nodes
                    )
                    continue
                # Quantum phase: attach the QPU component on demand.
                requested_at = ctx.now
                allocation: Allocation = yield ctx.attach_component(
                    JobComponent(
                        "quantum",
                        strategy.quantum_nodes,
                        quantum_walltime,
                        gres={"qpu": 1},
                    )
                )
                attach_waits.append(ctx.now - requested_at)
                attached_at = ctx.now
                if strategy.attach_overhead > 0:
                    yield ctx.timeout(strategy.attach_overhead)
                device = allocation.gres_devices("qpu")[0]
                assert phase.circuit is not None
                result = yield device.run(
                    phase.circuit, phase.shots, submitter=app.name
                )
                record.quantum_access_waits.append(result.queue_time)
                record.qpu_busy_seconds += result.execution_time
                record.qpu_calibration_seconds += result.calibration_time
                qpu_held += ctx.now - attached_at
                ctx.detach_component("quantum")
            record.qpu_held_seconds = qpu_held
            record.details["attach_waits_s"] = attach_waits
            record.details["attach_overhead_s"] = strategy.attach_overhead

        spec = JobSpec(
            name=f"{app.name}:elastic",
            components=[
                JobComponent("classical", app.classical_nodes, walltime)
            ],
            user=app.name,
            work=work,
            tags={"strategy": self.name, "app": app.name},
        )
        job = env.scheduler.submit(spec)
        record.details["walltime_s"] = walltime

        def on_finished(event) -> None:
            record.end_time = env.kernel.now
            record.details["final_state"] = event.value.value
            if record.start_time is not None:
                held = record.end_time - record.start_time
                record.classical_held_node_seconds = (
                    app.classical_nodes * held
                )
            done.succeed(record)

        job.finished.callbacks.append(on_finished)
        return StrategyRun(record, done)
