"""Phase-structured hybrid application model.

The paper reasons about hybrid jobs as alternations of *classical
phases* (MPI compute on many nodes) and *quantum phases* (kernels
offloaded to a QPU) — the canonical pattern of variational algorithms
(VQE/QAOA), where a classical optimiser iterates over quantum circuit
evaluations.  :class:`HybridApplication` captures exactly that
structure, *independent of the integration strategy*: all four
strategies in :mod:`repro.strategies` execute the same application
object, so cross-strategy comparisons hold the workload fixed.

Classical phases scale with allocated nodes through a simple Amdahl
model, which is what makes malleability's "continue with fewer
resources, accepting slower performance" trade-off expressible.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.quantum.technology import QPUTechnology

_app_counter = itertools.count(1)


class PhaseKind(enum.Enum):
    CLASSICAL = "classical"
    QUANTUM = "quantum"


@dataclass(frozen=True)
class Phase:
    """One phase of a hybrid application.

    For classical phases, ``work`` is the phase's single-node compute
    time in seconds (scaled down with node count via Amdahl's law).
    For quantum phases, ``circuit``/``shots`` describe the kernel.
    """

    kind: PhaseKind
    work: float = 0.0
    circuit: Optional[Circuit] = None
    shots: int = 0

    def __post_init__(self) -> None:
        if self.kind == PhaseKind.CLASSICAL:
            if self.work < 0:
                raise ConfigurationError("classical work must be >= 0")
        else:
            if self.circuit is None or self.shots <= 0:
                raise ConfigurationError(
                    "quantum phase needs a circuit and positive shots"
                )

    @property
    def is_quantum(self) -> bool:
        return self.kind == PhaseKind.QUANTUM


def classical(work: float) -> Phase:
    """A classical phase of ``work`` single-node seconds."""
    return Phase(PhaseKind.CLASSICAL, work=work)


def quantum(circuit: Circuit, shots: int) -> Phase:
    """A quantum phase running ``shots`` of ``circuit``."""
    return Phase(PhaseKind.QUANTUM, circuit=circuit, shots=shots)


@dataclass
class HybridApplication:
    """A hybrid HPC-QC application as a sequence of phases.

    Parameters
    ----------
    phases:
        Alternating (not necessarily strictly) classical/quantum phases.
    classical_nodes:
        Node count the application requests for classical phases.
    min_classical_nodes:
        Smallest node count the application can run on — the floor a
        malleable job may shrink to during quantum phases (Fig 4).
    serial_fraction:
        Amdahl serial fraction of the classical phases.
    name:
        Label used in reports; auto-generated when omitted.
    """

    phases: List[Phase]
    classical_nodes: int = 10
    min_classical_nodes: int = 1
    serial_fraction: float = 0.05
    name: str = field(default_factory=lambda: f"app-{next(_app_counter)}")

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"{self.name}: no phases")
        if self.classical_nodes <= 0:
            raise ConfigurationError(
                f"{self.name}: classical_nodes must be positive"
            )
        if not 1 <= self.min_classical_nodes <= self.classical_nodes:
            raise ConfigurationError(
                f"{self.name}: min_classical_nodes must be in "
                f"[1, classical_nodes]"
            )
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: serial_fraction must be in [0, 1]"
            )

    # -- timing --------------------------------------------------------------------

    def classical_time(self, phase: Phase, nodes: int) -> float:
        """Amdahl-scaled duration of a classical ``phase`` on ``nodes``."""
        if phase.kind != PhaseKind.CLASSICAL:
            raise ConfigurationError("classical_time needs a classical phase")
        if nodes <= 0:
            raise ConfigurationError("node count must be positive")
        serial = self.serial_fraction
        return phase.work * (serial + (1.0 - serial) / nodes)

    def quantum_time(self, phase: Phase, technology: QPUTechnology) -> float:
        """Device-busy time of a quantum ``phase`` on ``technology``."""
        if not phase.is_quantum:
            raise ConfigurationError("quantum_time needs a quantum phase")
        assert phase.circuit is not None
        return technology.execution_time(phase.circuit, phase.shots)

    def total_classical_time(self, nodes: Optional[int] = None) -> float:
        """Sum of classical-phase durations at ``nodes`` (default: requested)."""
        node_count = nodes if nodes is not None else self.classical_nodes
        return sum(
            self.classical_time(phase, node_count)
            for phase in self.phases
            if phase.kind == PhaseKind.CLASSICAL
        )

    def total_quantum_time(self, technology: QPUTechnology) -> float:
        """Sum of quantum-phase device times on ``technology``."""
        return sum(
            self.quantum_time(phase, technology)
            for phase in self.phases
            if phase.is_quantum
        )

    def calibration_overhead(self, technology: QPUTechnology) -> float:
        """Geometry-calibration time the app will trigger on ``technology``.

        One pass per *change* of register geometry across the quantum
        phases (the device caches the last calibrated geometry).
        """
        if not technology.needs_geometry_calibration:
            return 0.0
        changes = 0
        last: Optional[str] = None
        for phase in self.phases:
            if not phase.is_quantum:
                continue
            assert phase.circuit is not None
            geometry = phase.circuit.geometry
            if geometry is not None and geometry != last:
                changes += 1
                last = geometry
        return changes * technology.geometry_calibration_duration

    def ideal_makespan(self, technology: QPUTechnology,
                       nodes: Optional[int] = None) -> float:
        """Zero-queueing sequential runtime (including the calibrations
        the app necessarily triggers): the lower bound every strategy is
        judged against."""
        return (
            self.total_classical_time(nodes)
            + self.total_quantum_time(technology)
            + self.calibration_overhead(technology)
        )

    @property
    def quantum_phase_count(self) -> int:
        return sum(1 for phase in self.phases if phase.is_quantum)

    @property
    def classical_phase_count(self) -> int:
        return len(self.phases) - self.quantum_phase_count

    def __repr__(self) -> str:
        return (
            f"<HybridApplication {self.name} phases={len(self.phases)} "
            f"nodes={self.classical_nodes}>"
        )


# ---------------------------------------------------------------------------
# Canonical application factories
# ---------------------------------------------------------------------------


def vqe_like(
    iterations: int,
    classical_work: float,
    circuit: Circuit,
    shots: int = 1000,
    classical_nodes: int = 10,
    min_classical_nodes: int = 1,
    final_analysis: float = 0.0,
    name: Optional[str] = None,
) -> HybridApplication:
    """Variational loop: ``iterations`` × (classical optimise → quantum
    evaluate), plus an optional final classical analysis phase.

    This is the paper's motivating workload: "long running classical
    computation interleaved with very short quantum jobs" when
    ``classical_work`` dominates, or the opposite on slow QPUs.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    phases: List[Phase] = []
    for _ in range(iterations):
        phases.append(classical(classical_work))
        phases.append(quantum(circuit, shots))
    if final_analysis > 0:
        phases.append(classical(final_analysis))
    return HybridApplication(
        phases=phases,
        classical_nodes=classical_nodes,
        min_classical_nodes=min_classical_nodes,
        name=name or f"vqe-{iterations}it",
    )


def qaoa_like(
    layers: int,
    sweep_points: int,
    classical_work_per_point: float,
    circuit: Circuit,
    shots: int = 2000,
    classical_nodes: int = 8,
    name: Optional[str] = None,
) -> HybridApplication:
    """QAOA-style parameter sweep: per layer, a classical preparation
    then a burst of ``sweep_points`` quantum evaluations."""
    if layers <= 0 or sweep_points <= 0:
        raise ConfigurationError("layers and sweep_points must be positive")
    phases: List[Phase] = []
    for _ in range(layers):
        phases.append(classical(classical_work_per_point * sweep_points))
        for _ in range(sweep_points):
            phases.append(quantum(circuit, shots))
    return HybridApplication(
        phases=phases,
        classical_nodes=classical_nodes,
        name=name or f"qaoa-{layers}x{sweep_points}",
    )


def sampling_campaign(
    batches: int,
    circuit: Circuit,
    shots_per_batch: int,
    post_processing: float,
    classical_nodes: int = 4,
    name: Optional[str] = None,
) -> HybridApplication:
    """Quantum-dominated workload: sample batches with light classical
    post-processing — the regime where classical nodes idle (neutral
    atoms in the paper's Listing 1 discussion)."""
    if batches <= 0:
        raise ConfigurationError("batches must be positive")
    phases: List[Phase] = []
    for _ in range(batches):
        phases.append(quantum(circuit, shots_per_batch))
        phases.append(classical(post_processing))
    return HybridApplication(
        phases=phases,
        classical_nodes=classical_nodes,
        name=name or f"sampling-{batches}b",
    )


def interleave(apps: Iterable[HybridApplication]) -> List[HybridApplication]:
    """Utility: materialise an iterable of applications (for campaigns)."""
    return list(apps)
