"""S2 — virtual QPUs: temporal interleaving on one physical device
(paper Fig 3).

"Dividing the available qubits among the applications is unfeasible due
to isolation issues", so a :class:`VirtualQPUPool` multiplexes a fixed
number of *virtual* QPUs onto one physical device **in time**: each
VQPU is exposed to the batch scheduler as its own ``qpu`` gres unit, so
V applications can be co-scheduled against a single machine.  A VQPU
admits one outstanding kernel at a time, hence a request waits for at
most ``V - 1`` foreign kernels — the paper's "minimal delays, bounded
by the number of VQPUs".
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.sim.events import Event
from repro.sim.monitor import SampleSeries
from repro.strategies.coschedule import CoScheduleStrategy


class VirtualQPU:
    """One time-share of a physical QPU, exposed as a gres device.

    Mirrors the :class:`~repro.quantum.qpu.QPU` submission API
    (``run(circuit, shots)``) so applications are oblivious to
    virtualisation — the paper's "these changes do not affect the
    application code at all".
    """

    def __init__(self, pool: "VirtualQPUPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.name = f"{pool.qpu.name}/v{index}"
        self._outstanding = 0
        self.requests_served = 0
        #: Extra wait each request experienced due to sharing.
        self.interleave_waits = SampleSeries(f"{self.name}:interleave")

    @property
    def technology(self):
        return self.pool.qpu.technology

    def run(
        self, circuit: Circuit, shots: int, submitter: Optional[str] = None
    ) -> Event:
        """Submit a kernel through this virtual QPU.

        A virtual QPU is a *time share*: concurrent outstanding requests
        on the same VQPU are a programming error (the batch job that
        owns it executes kernels one at a time).
        """
        if self._outstanding >= 1:
            raise QuantumDeviceError(
                f"virtual QPU {self.name} already has an outstanding "
                "request (one kernel at a time per time-share)"
            )
        self._outstanding += 1
        kernel = self.pool.qpu.kernel
        proxy = kernel.event()
        submit_time = kernel.now
        completion = self.pool.qpu.run(circuit, shots, submitter=submitter)

        def forward(event: Event) -> None:
            self._outstanding -= 1
            self.requests_served += 1
            result = event.value
            self.interleave_waits.record(result.queue_time)
            self.pool.record_request(self.index, submit_time, kernel.now)
            proxy.succeed(result)

        completion.callbacks.append(forward)
        return proxy

    def __repr__(self) -> str:
        return f"<VirtualQPU {self.name} served={self.requests_served}>"


class VirtualQPUPool:
    """A fixed number of virtual QPUs multiplexed onto one physical QPU.

    Requests from all VQPUs funnel into the physical device's FIFO
    inbox; because each VQPU holds at most one outstanding request, any
    request finds at most ``size - 1`` kernels ahead of it.
    """

    def __init__(self, qpu: QPU, size: int) -> None:
        if size <= 0:
            raise QuantumDeviceError("pool size must be positive")
        self.qpu = qpu
        self.size = size
        self.virtual_qpus: List[VirtualQPU] = [
            VirtualQPU(self, index) for index in range(size)
        ]
        #: End-to-end request times across all tenants.
        self.request_times = SampleSeries(f"{qpu.name}:pool")
        self.total_requests = 0

    def record_request(
        self, vqpu_index: int, submit_time: float, end_time: float
    ) -> None:
        self.request_times.record(end_time - submit_time)
        self.total_requests += 1

    def delay_bound(self, worst_kernel_time: float) -> float:
        """Paper's admission bound: at most ``size - 1`` foreign kernels
        (each at most ``worst_kernel_time``) precede any request."""
        return (self.size - 1) * worst_kernel_time

    def __repr__(self) -> str:
        return (
            f"<VirtualQPUPool {self.qpu.name} x{self.size} "
            f"requests={self.total_requests}>"
        )


class VQPUStrategy(CoScheduleStrategy):
    """Co-scheduling against a *virtual* QPU gres unit.

    Identical job shape to :class:`CoScheduleStrategy` — one hetjob
    with ``--gres=qpu:1`` — but launched into an environment whose
    quantum partition exposes ``V`` virtual units per physical device
    (see :func:`repro.strategies.envs.make_environment` with
    ``vqpus_per_qpu > 1``), so up to V tenants hold "a QPU"
    simultaneously and interleave on the real one.

    The requested walltime provisions for the interleaving delay bound:
    every quantum phase may wait behind up to ``V - 1`` foreign kernels.
    """

    name = "vqpu"

    def _walltime_for(self, env, app) -> float:
        if self.walltime is not None:
            return self.walltime
        technology = env.planning_technology(app)
        base = app.ideal_makespan(technology) * self.walltime_safety
        pool_size = max(
            (pool.size for pool in env.vqpu_pools), default=1
        )
        if pool_size <= 1:
            return base
        worst_kernel = max(
            (
                technology.execution_time(phase.circuit, phase.shots)
                for phase in app.phases
                if phase.is_quantum
            ),
            default=0.0,
        )
        interleave_allowance = (
            app.quantum_phase_count * (pool_size - 1) * worst_kernel
        )
        return base + interleave_allowance * self.walltime_safety
