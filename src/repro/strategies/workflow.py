"""S1 — loosely-coupled workflows (paper Fig 2).

A workflow manager (Nextflow/StreamFlow/PyCOMPSs in the paper; a
generic DAG engine here) submits each step as an *independent* batch
job once its dependencies complete.  Resources are held only while a
step runs — utilisation of the scarce resource improves — but every
step pays a queue wait, which dominates when steps are short
("the queuing time that each step has to go through may introduce a
significant overhead when its duration outweighs the length of the
computation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import WorkflowError
from repro.quantum.circuit import QuantumResult
from repro.scheduler.job import JobComponent, JobContext, JobSpec, JobState
from repro.strategies.application import HybridApplication, PhaseKind
from repro.strategies.base import (
    Environment,
    IntegrationStrategy,
    StrategyRun,
)

#: Safety factor applied to estimated step durations when deriving
#: per-step walltimes.
STEP_WALLTIME_SAFETY = 1.5
#: Floor for step walltimes: very short steps still request a sane
#: minimum, as real sites enforce (and users request round numbers).
MIN_STEP_WALLTIME = 60.0


@dataclass
class WorkflowStep:
    """One node of a workflow DAG."""

    name: str
    spec_factory: Callable[[], JobSpec]
    dependencies: List[str] = field(default_factory=list)


class Workflow:
    """A named DAG of :class:`WorkflowStep`."""

    def __init__(self, name: str, steps: List[WorkflowStep]) -> None:
        self.name = name
        self.steps: Dict[str, WorkflowStep] = {}
        for step in steps:
            if step.name in self.steps:
                raise WorkflowError(f"duplicate step name {step.name!r}")
            self.steps[step.name] = step
        self._validate()

    def _validate(self) -> None:
        # Unknown dependencies.
        for step in self.steps.values():
            for dep in step.dependencies:
                if dep not in self.steps:
                    raise WorkflowError(
                        f"step {step.name!r} depends on unknown {dep!r}"
                    )
        # Cycle detection (iterative DFS, three-colour).
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self.steps}
        for root in self.steps:
            if colour[root] != WHITE:
                continue
            stack = [(root, iter(self.steps[root].dependencies))]
            colour[root] = GREY
            while stack:
                name, deps = stack[-1]
                advanced = False
                for dep in deps:
                    if colour[dep] == GREY:
                        raise WorkflowError(
                            f"workflow {self.name!r} has a cycle through "
                            f"{dep!r}"
                        )
                    if colour[dep] == WHITE:
                        colour[dep] = GREY
                        stack.append(
                            (dep, iter(self.steps[dep].dependencies))
                        )
                        advanced = True
                        break
                if not advanced:
                    colour[name] = BLACK
                    stack.pop()

    def topological_order(self) -> List[str]:
        """Step names in dependency order."""
        order: List[str] = []
        visited: Dict[str, bool] = {}

        def visit(name: str) -> None:
            if visited.get(name):
                return
            visited[name] = True
            for dep in self.steps[name].dependencies:
                visit(dep)
            order.append(name)

        for name in self.steps:
            visit(name)
        return order

    def __len__(self) -> int:
        return len(self.steps)


class WorkflowEngine:
    """Submits workflow steps as independent jobs when ready (Fig 2).

    Two execution modes mirror how real workflow managers drive batch
    systems:

    - *engine-driven* (default): the engine watches step completions
      and submits successors itself (Nextflow/StreamFlow style);
    - *scheduler-driven* (``use_scheduler_dependencies=True``): every
      step is submitted up front with ``--dependency=afterok`` chains
      and the batch scheduler orders them (shell-script + sbatch
      style).
    """

    def __init__(
        self, env: Environment, use_scheduler_dependencies: bool = False
    ) -> None:
        self.env = env
        self.use_scheduler_dependencies = use_scheduler_dependencies

    def execute(self, workflow: Workflow):
        """Generator running the whole DAG; yields until completion.

        Steps whose dependencies are satisfied are submitted in
        parallel.  A failed/timed-out step aborts the workflow with
        :class:`WorkflowError`.

        Returns a dict of step name → finished
        :class:`~repro.scheduler.job.Job`.
        """
        if self.use_scheduler_dependencies:
            return (yield from self._execute_via_scheduler(workflow))
        return (yield from self._execute_engine_driven(workflow))

    def _execute_via_scheduler(self, workflow: Workflow):
        """Submit the whole DAG at once with afterok dependencies."""
        kernel = self.env.kernel
        scheduler = self.env.scheduler
        jobs: Dict[str, object] = {}
        for name in workflow.topological_order():
            step = workflow.steps[name]
            spec = step.spec_factory()
            spec.after_ok = [
                *spec.after_ok,
                *(jobs[dep].id for dep in step.dependencies),
            ]
            jobs[name] = scheduler.submit(spec)
        yield kernel.all_of([job.finished for job in jobs.values()])
        for name, job in jobs.items():
            state = job.finished.value
            if state != JobState.COMPLETED:
                raise WorkflowError(
                    f"workflow {workflow.name!r}: step {name!r} "
                    f"ended {state.value}"
                )
        return jobs

    def _execute_engine_driven(self, workflow: Workflow):
        kernel = self.env.kernel
        scheduler = self.env.scheduler
        finished: Dict[str, JobState] = {}
        jobs: Dict[str, object] = {}
        pending = dict(workflow.steps)

        while pending or any(
            name not in finished for name in jobs
        ):
            # Submit every step whose dependencies are all complete.
            ready = [
                step
                for step in pending.values()
                if all(dep in finished for dep in step.dependencies)
            ]
            for step in ready:
                del pending[step.name]
                jobs[step.name] = scheduler.submit(step.spec_factory())

            running_waits = [
                jobs[name].finished
                for name in jobs
                if name not in finished
            ]
            if not running_waits:
                if pending:
                    raise WorkflowError(
                        f"workflow {workflow.name!r} deadlocked with "
                        f"pending steps {sorted(pending)}"
                    )
                break
            outcome = yield kernel.any_of(running_waits)
            for name, job in jobs.items():
                if name in finished:
                    continue
                if job.finished.processed:
                    state = job.finished.value
                    finished[name] = state
                    if state != JobState.COMPLETED:
                        raise WorkflowError(
                            f"workflow {workflow.name!r}: step {name!r} "
                            f"ended {state.value}"
                        )
            del outcome
        return jobs


class WorkflowStrategy(IntegrationStrategy):
    """Run a hybrid application as a linear workflow of per-phase jobs."""

    name = "workflow"

    def __init__(
        self,
        step_walltime_safety: float = STEP_WALLTIME_SAFETY,
        min_step_walltime: float = MIN_STEP_WALLTIME,
        quantum_nodes: int = 1,
        use_scheduler_dependencies: bool = False,
    ) -> None:
        self.step_walltime_safety = step_walltime_safety
        self.min_step_walltime = min_step_walltime
        self.quantum_nodes = quantum_nodes
        self.use_scheduler_dependencies = use_scheduler_dependencies

    # -- workflow construction ------------------------------------------------------

    def build_workflow(
        self, env: Environment, app: HybridApplication, record
    ) -> Workflow:
        """One step per phase, chained linearly."""
        technology = env.planning_technology(app)
        steps: List[WorkflowStep] = []
        previous: Optional[str] = None
        for index, phase in enumerate(app.phases):
            name = f"{app.name}:step{index:03d}:{phase.kind.value}"
            deps = [previous] if previous else []
            if phase.kind == PhaseKind.CLASSICAL:
                spec_factory = self._classical_spec_factory(
                    app, phase, name, record
                )
            else:
                spec_factory = self._quantum_spec_factory(
                    app, phase, name, technology, record
                )
            steps.append(WorkflowStep(name, spec_factory, deps))
            previous = name
        return Workflow(app.name, steps)

    def _step_walltime(self, estimate: float) -> float:
        return max(
            estimate * self.step_walltime_safety, self.min_step_walltime
        )

    def _classical_spec_factory(self, app, phase, name, record):
        duration = app.classical_time(phase, app.classical_nodes)
        walltime = self._step_walltime(duration)

        def factory() -> JobSpec:
            def work(ctx: JobContext):
                if duration > 0:
                    yield ctx.timeout(duration)
                record.classical_useful_node_seconds += (
                    duration * app.classical_nodes
                )

            return JobSpec(
                name=name,
                components=[
                    JobComponent("classical", app.classical_nodes, walltime)
                ],
                user=app.name,
                work=work,
                tags={"strategy": self.name, "app": app.name},
            )

        return factory

    def _quantum_spec_factory(self, app, phase, name, technology, record):
        # Provision for geometry calibration plus one periodic
        # calibration pass: either may precede the kernel at the device.
        estimate = technology.job_time_with_calibration(
            phase.circuit, phase.shots
        )
        if technology.calibration_interval != float("inf"):
            estimate += technology.calibration_duration
        walltime = self._step_walltime(estimate)
        quantum_nodes = self.quantum_nodes

        def factory() -> JobSpec:
            def work(ctx: JobContext):
                device = ctx.first_qpu()
                result: QuantumResult = yield device.run(
                    phase.circuit, phase.shots, submitter=app.name
                )
                record.quantum_access_waits.append(result.queue_time)
                record.qpu_busy_seconds += result.execution_time
                record.qpu_calibration_seconds += result.calibration_time

            return JobSpec(
                name=name,
                components=[
                    JobComponent(
                        "quantum", quantum_nodes, walltime, gres={"qpu": 1}
                    )
                ],
                user=app.name,
                work=work,
                tags={"strategy": self.name, "app": app.name},
            )

        return factory

    # -- launch ----------------------------------------------------------------------

    def launch(self, env: Environment, app: HybridApplication) -> StrategyRun:
        record = self._new_record(env, app)
        done = env.kernel.event()
        workflow = self.build_workflow(env, app, record)
        engine = WorkflowEngine(
            env,
            use_scheduler_dependencies=self.use_scheduler_dependencies,
        )

        def runner():
            try:
                jobs = yield from engine.execute(workflow)
            except WorkflowError as error:
                record.end_time = env.kernel.now
                record.details["error"] = str(error)
                done.succeed(record)
                return
            record.end_time = env.kernel.now
            starts = [
                job.start_time
                for job in jobs.values()
                if job.start_time is not None
            ]
            record.start_time = min(starts) if starts else None
            for job in jobs.values():
                wait = job.wait_time
                if wait is not None:
                    record.queue_waits.append(wait)
                if job.start_time is None:
                    continue
                end = (
                    job.end_time
                    if job.end_time is not None
                    else env.kernel.now
                )
                held = end - job.start_time
                for allocation in job.allocations:
                    if allocation.partition_name == "classical":
                        record.classical_held_node_seconds += (
                            allocation.node_count * held
                        )
                    else:
                        record.qpu_held_seconds += held
            record.details["steps"] = len(workflow)
            record.details["final_state"] = "completed"
            done.succeed(record)

        env.kernel.process(runner(), name=f"workflow:{app.name}")
        return StrategyRun(record, done)
