"""Strategy framework: environment, per-run records, common driver.

An :class:`Environment` bundles the simulated facility (kernel, cluster,
scheduler, the QPU fleet).  An :class:`IntegrationStrategy` launches a
:class:`~repro.strategies.application.HybridApplication` into that
facility and produces a :class:`RunRecord` — the uniform measurement
every experiment consumes:

- *turnaround* (submit of the first piece to completion of the last),
- *held* node/QPU-gres seconds (what the allocation occupied),
- *useful* node/QPU seconds (what actually computed),
- per-step queue waits.

``held`` vs ``useful`` is precisely the paper's wasted-resource
argument: exclusive co-scheduling makes ``held ≫ useful`` on one side
or the other depending on the QPU technology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.quantum.fleet import QPUFleet
from repro.quantum.qpu import QPU
from repro.quantum.technology import QPUTechnology
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.events import Event
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams
from repro.strategies.application import HybridApplication


@dataclass
class Environment:
    """The simulated facility a strategy runs against."""

    kernel: Kernel
    cluster: Cluster
    scheduler: BatchScheduler
    qpus: List[QPU]
    streams: RandomStreams
    #: Virtual-QPU pools, populated when the environment virtualises
    #: its devices (``vqpus_per_qpu > 1``).
    vqpu_pools: List[Any] = field(default_factory=list)
    #: Stochastic failure injectors installed by the scenario's fault
    #: schedule (empty unless the scenario requests random churn).
    fault_injectors: List[Any] = field(default_factory=list)
    #: Router over the physical devices (the scenario build pipeline
    #: always installs one; hand-built environments may leave it None).
    fleet: Optional[QPUFleet] = None

    @property
    def now(self) -> float:
        return self.kernel.now

    def primary_qpu(self) -> QPU:
        if not self.qpus:
            raise ConfigurationError("environment has no QPU")
        return self.qpus[0]

    def technologies(self) -> List[QPUTechnology]:
        """Distinct device technologies, in fleet declaration order."""
        if not self.qpus:
            raise ConfigurationError("environment has no QPU")
        seen: List[QPUTechnology] = []
        for qpu in self.qpus:
            if qpu.technology not in seen:
                seen.append(qpu.technology)
        return seen

    def planning_technology(
        self, app: "HybridApplication"
    ) -> QPUTechnology:
        """The technology walltime estimates should provision for.

        A homogeneous fleet answers with its (single) device
        technology — exactly the historical ``primary_qpu``
        behaviour.  A heterogeneous fleet answers with the *slowest*
        technology capable of the app's widest circuit, so a derived
        walltime is sufficient on any device that can execute the
        kernels.

        Note the planning/execution split: strategies execute quantum
        phases on whichever ``qpu`` gres unit the batch scheduler
        allocates (fleet-routed dispatch covers direct ``fleet.run``
        clients and hybrid trace payloads).  On a mixed fleet whose
        registers differ, a job can therefore still land on a device
        too small for its circuits and fail at submission —
        capability-constrained gres placement is a roadmap item; until
        then size strategy-campaign circuits to the *smallest* fleet
        register (``HybridAppGenerator(max_qubits=...)``).
        """
        technologies = self.technologies()
        if len(technologies) == 1:
            return technologies[0]
        width = max(
            (
                phase.circuit.num_qubits
                for phase in app.phases
                if phase.is_quantum and phase.circuit is not None
            ),
            default=0,
        )
        capable = [
            technology
            for technology in technologies
            if technology.num_qubits >= width
        ]
        if not capable:
            raise ConfigurationError(
                f"no fleet technology has {width} qubits for "
                f"{app.name!r} (largest: "
                f"{max(t.num_qubits for t in technologies)})"
            )
        return max(capable, key=app.ideal_makespan)


class HeldIntegrator:
    """Integrates ``count × dt`` across explicit set-points.

    Used to account node-seconds held while an allocation's size varies
    (malleability) or across disjoint per-step allocations (workflows).
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._count = 0.0
        self._since = kernel.now
        self.total = 0.0

    def set_count(self, count: float) -> None:
        now = self.kernel.now
        self.total += self._count * (now - self._since)
        self._since = now
        self._count = count

    def finish(self) -> float:
        self.set_count(0.0)
        return self.total


@dataclass
class RunRecord:
    """Uniform per-application measurement across strategies."""

    app_name: str
    strategy: str
    submit_time: float
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    #: Node-seconds of classical allocation held (integrated over time).
    classical_held_node_seconds: float = 0.0
    #: Node-seconds of useful classical compute.
    classical_useful_node_seconds: float = 0.0
    #: Seconds the QPU gres was held by this application.
    qpu_held_seconds: float = 0.0
    #: Device-busy seconds consumed by this application's kernels.
    qpu_busy_seconds: float = 0.0
    #: Calibration seconds triggered by this application's kernels.
    qpu_calibration_seconds: float = 0.0

    #: Queue waits paid, one per independently scheduled piece.
    queue_waits: List[float] = field(default_factory=list)
    #: Waits between kernel submission and kernel start at the device.
    quantum_access_waits: List[float] = field(default_factory=list)
    #: Strategy-specific annotations.
    details: Dict[str, Any] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------------

    @property
    def turnaround(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def total_queue_wait(self) -> float:
        return sum(self.queue_waits)

    @property
    def classical_efficiency(self) -> float:
        """useful / held node-seconds on the classical side (0 if unheld)."""
        if self.classical_held_node_seconds <= 0:
            return 0.0
        return min(
            self.classical_useful_node_seconds
            / self.classical_held_node_seconds,
            1.0,
        )

    @property
    def qpu_efficiency(self) -> float:
        """busy / held seconds on the QPU side (0 if unheld)."""
        if self.qpu_held_seconds <= 0:
            return 0.0
        return min(self.qpu_busy_seconds / self.qpu_held_seconds, 1.0)

    def summary(self) -> Dict[str, Any]:
        """Flat dict for tabular reports."""
        return {
            "app": self.app_name,
            "strategy": self.strategy,
            "turnaround_s": self.turnaround,
            "queue_wait_s": self.total_queue_wait,
            "classical_efficiency": self.classical_efficiency,
            "qpu_efficiency": self.qpu_efficiency,
            "qpu_busy_s": self.qpu_busy_seconds,
            "classical_held_node_s": self.classical_held_node_seconds,
        }


class StrategyRun:
    """Handle to an in-flight strategy execution."""

    def __init__(self, record: RunRecord, done: Event) -> None:
        self.record = record
        #: Fires with the finished :class:`RunRecord`.
        self.done = done


class IntegrationStrategy:
    """Interface implemented by the four integration approaches."""

    #: Registry/report name, e.g. ``"coschedule"``.
    name = "abstract"

    def launch(self, env: Environment, app: HybridApplication) -> StrategyRun:
        """Start ``app`` in ``env``; returns immediately with a handle."""
        raise NotImplementedError

    def _new_record(self, env: Environment, app: HybridApplication) -> RunRecord:
        return RunRecord(
            app_name=app.name, strategy=self.name, submit_time=env.now
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def run_strategies_to_completion(
    env: Environment,
    runs: List[StrategyRun],
    extra_time: float = 0.0,
) -> List[RunRecord]:
    """Drive the kernel until every run completes; return the records."""
    for run in runs:
        env.kernel.run(until=run.done)
    if extra_time > 0:
        env.kernel.run(until=env.kernel.now + extra_time)
    return [run.record for run in runs]
