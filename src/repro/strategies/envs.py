"""Environment factories: one call builds a complete simulated facility.

Experiments compare strategies by building one *fresh* environment per
strategy (same seed, same topology) and launching the same applications
into each — the simulation analogue of re-running a testbed experiment
under a different scheduler configuration.

Since the scenario layer landed, this module is a thin veneer:
:func:`make_environment` translates its keyword arguments into a
:class:`~repro.scenarios.spec.ScenarioSpec` and hands it to the single
:func:`repro.scenarios.build.build` pipeline, so imperative callers and
declarative scenarios construct *identical* facilities.
"""

from __future__ import annotations

from typing import Optional

from repro.quantum.technology import SUPERCONDUCTING, QPUTechnology
from repro.scheduler.priority import PriorityWeights
from repro.strategies.base import Environment


def environment_scenario(
    classical_nodes: int = 32,
    technology: QPUTechnology = SUPERCONDUCTING,
    qpu_count: int = 1,
    vqpus_per_qpu: int = 1,
    policy: str = "easy",
    seed: int = 0,
    jitter: bool = False,
    priority_weights: Optional[PriorityWeights] = None,
    scheduling_cycle: float = 0.0,
):
    """The :class:`ScenarioSpec` equivalent of ``make_environment`` args."""
    from repro.scenarios.spec import (
        FleetSpec,
        PolicySpec,
        ScenarioSpec,
        TopologySpec,
    )

    weights = priority_weights or PriorityWeights()
    return ScenarioSpec(
        name="make-environment",
        topology=TopologySpec(classical_nodes=classical_nodes),
        fleet=FleetSpec(
            technology=technology.name,
            qpu_count=qpu_count,
            vqpus_per_qpu=vqpus_per_qpu,
            jitter=jitter,
        ),
        policy=PolicySpec(
            policy=policy,
            scheduling_cycle=scheduling_cycle,
            priority_age=weights.age,
            priority_size=weights.size,
            priority_fairshare=weights.fairshare,
            priority_qos=weights.qos,
        ),
        seed=seed,
    )


def make_environment(
    classical_nodes: int = 32,
    technology: QPUTechnology = SUPERCONDUCTING,
    qpu_count: int = 1,
    vqpus_per_qpu: int = 1,
    policy: str = "easy",
    seed: int = 0,
    jitter: bool = False,
    priority_weights: Optional[PriorityWeights] = None,
    scheduling_cycle: float = 0.0,
) -> Environment:
    """Build a two-partition HPC-QC facility.

    Parameters
    ----------
    vqpus_per_qpu:
        1 exposes each physical QPU directly as one ``qpu`` gres unit
        (exclusive access).  V > 1 interposes a
        :class:`~repro.strategies.vqpu.VirtualQPUPool` exposing V
        virtual units per device (Fig 3's multitenancy).
    jitter:
        Enable stochastic duration jitter on QPU executions.
    """
    from repro.scenarios.build import build

    return build(
        environment_scenario(
            classical_nodes=classical_nodes,
            technology=technology,
            qpu_count=qpu_count,
            vqpus_per_qpu=vqpus_per_qpu,
            policy=policy,
            seed=seed,
            jitter=jitter,
            priority_weights=priority_weights,
            scheduling_cycle=scheduling_cycle,
        )
    )
