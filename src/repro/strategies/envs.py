"""Environment factories: one call builds a complete simulated facility.

Experiments compare strategies by building one *fresh* environment per
strategy (same seed, same topology) and launching the same applications
into each — the simulation analogue of re-running a testbed experiment
under a different scheduler configuration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.builders import build_hpcqc_cluster
from repro.cluster.cluster import Cluster
from repro.quantum.qpu import QPU
from repro.quantum.technology import SUPERCONDUCTING, QPUTechnology
from repro.scheduler.backfill import make_policy
from repro.scheduler.priority import MultifactorPriority, PriorityWeights
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams
from repro.strategies.base import Environment
from repro.strategies.vqpu import VirtualQPUPool


def make_environment(
    classical_nodes: int = 32,
    technology: QPUTechnology = SUPERCONDUCTING,
    qpu_count: int = 1,
    vqpus_per_qpu: int = 1,
    policy: str = "easy",
    seed: int = 0,
    jitter: bool = False,
    priority_weights: Optional[PriorityWeights] = None,
    scheduling_cycle: float = 0.0,
) -> Environment:
    """Build a two-partition HPC-QC facility.

    Parameters
    ----------
    vqpus_per_qpu:
        1 exposes each physical QPU directly as one ``qpu`` gres unit
        (exclusive access).  V > 1 interposes a
        :class:`~repro.strategies.vqpu.VirtualQPUPool` exposing V
        virtual units per device (Fig 3's multitenancy).
    jitter:
        Enable stochastic duration jitter on QPU executions.
    """
    kernel = Kernel()
    streams = RandomStreams(seed)
    qpus: List[QPU] = [
        QPU(
            kernel,
            technology,
            name=f"{technology.name}-{index}",
            streams=streams if jitter else None,
        )
        for index in range(qpu_count)
    ]
    if vqpus_per_qpu > 1:
        devices: List[object] = []
        pools: List[VirtualQPUPool] = []
        for qpu in qpus:
            pool = VirtualQPUPool(qpu, vqpus_per_qpu)
            pools.append(pool)
            devices.extend(pool.virtual_qpus)
    else:
        devices = list(qpus)
        pools = []

    # One front-end node per (virtual) QPU gres unit: node allocation is
    # whole-node exclusive, so co-tenancy requires one schedulable node
    # slot per virtual unit (gateway nodes are cheap in practice).
    cluster: Cluster = build_hpcqc_cluster(
        kernel,
        classical_nodes=classical_nodes,
        qpu_devices=devices,
        qpus_per_node=1,
    )
    scheduler = BatchScheduler(
        kernel,
        cluster,
        policy=make_policy(policy),
        priority=MultifactorPriority(
            weights=priority_weights,
            total_nodes=cluster.total_nodes(),
        ),
        cycle_time=scheduling_cycle,
    )
    return Environment(
        kernel=kernel,
        cluster=cluster,
        scheduler=scheduler,
        qpus=qpus,
        streams=streams,
        vqpu_pools=pools,
    )
