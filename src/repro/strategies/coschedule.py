"""S0 — exclusive co-scheduling (the paper's Listing 1 baseline).

One heterogeneous job allocates the classical nodes *and* the QPU gres
for the whole walltime.  Whatever phase is not running leaves the other
side idle-but-held: with a fast (superconducting) QPU the quantum side
is wasted; with a slow (neutral-atom) QPU the classical side is —
"simple co-scheduling with exclusive QPU access is inadequate"
(Section 3).
"""

from __future__ import annotations

from typing import Optional

from repro.scheduler.job import JobComponent, JobContext, JobSpec, JobState
from repro.strategies.application import HybridApplication
from repro.strategies.base import (
    Environment,
    IntegrationStrategy,
    StrategyRun,
)
from repro.strategies.phases import execute_phases

#: Default safety factor applied to the ideal makespan when the user
#: does not give an explicit walltime (users overestimate; so do we).
WALLTIME_SAFETY = 2.0


class CoScheduleStrategy(IntegrationStrategy):
    """Single hetjob holding classical nodes + QPU for the whole run.

    Parameters
    ----------
    walltime:
        Explicit walltime for both components (Listing 1 uses one
        hour).  When ``None``, the ideal makespan times
        ``walltime_safety`` is requested — mirroring users who size
        walltime from an estimate.
    hold_full_walltime:
        If True, the job does not exit when the application finishes:
        it occupies its allocation until the walltime expires, the
        worst-case (but common, for interactive-style reservations)
        behaviour the paper's Listing 1 example describes.
    quantum_nodes:
        Front-end nodes requested in the quantum partition.
    """

    name = "coschedule"

    def __init__(
        self,
        walltime: Optional[float] = None,
        walltime_safety: float = WALLTIME_SAFETY,
        hold_full_walltime: bool = False,
        quantum_nodes: int = 1,
    ) -> None:
        self.walltime = walltime
        self.walltime_safety = walltime_safety
        self.hold_full_walltime = hold_full_walltime
        self.quantum_nodes = quantum_nodes

    def _walltime_for(self, env: Environment, app: HybridApplication) -> float:
        if self.walltime is not None:
            return self.walltime
        technology = env.planning_technology(app)
        return app.ideal_makespan(technology) * self.walltime_safety

    def launch(self, env: Environment, app: HybridApplication) -> StrategyRun:
        record = self._new_record(env, app)
        done = env.kernel.event()
        walltime = self._walltime_for(env, app)
        strategy = self

        def work(ctx: JobContext):
            record.start_time = ctx.now
            record.queue_waits.append(ctx.now - record.submit_time)
            device = ctx.first_qpu()
            yield from execute_phases(
                app,
                ctx,
                record,
                qpu_device=device,
                nodes_getter=lambda: app.classical_nodes,
            )
            if strategy.hold_full_walltime:
                # Idle out the rest of the reservation (Listing 1 style);
                # exit a hair before the limit so the scheduler records a
                # clean completion rather than a walltime kill.
                remaining = (record.start_time + walltime) - ctx.now - 1e-6
                if remaining > 0:
                    record.details["idle_tail_s"] = remaining
                    yield ctx.timeout(remaining)

        spec = JobSpec(
            name=f"{app.name}:coschedule",
            components=[
                JobComponent(
                    "classical", app.classical_nodes, walltime
                ),
                JobComponent(
                    "quantum",
                    self.quantum_nodes,
                    walltime,
                    gres={"qpu": 1},
                ),
            ],
            user=app.name,
            work=work,
            tags={"strategy": self.name, "app": app.name},
        )
        job = env.scheduler.submit(spec)
        record.details["walltime_s"] = walltime

        def on_finished(event) -> None:
            end = env.kernel.now
            record.end_time = end
            state: JobState = event.value
            record.details["final_state"] = state.value
            if record.start_time is not None:
                held = end - record.start_time
                record.classical_held_node_seconds = (
                    app.classical_nodes * held
                )
                record.qpu_held_seconds = held
            done.succeed(record)

        job.finished.callbacks.append(on_finished)
        return StrategyRun(record, done)
