"""The paper's integration strategies and the hybrid application model.

Four strategies share one application model and one launch interface:

==================  ==========================================  =========
Strategy            Paper artefact                              Class
==================  ==========================================  =========
``coschedule``      Listing 1 baseline (exclusive hetjob)       :class:`CoScheduleStrategy`
``workflow``        Fig 2 (loosely-coupled steps)               :class:`WorkflowStrategy`
``vqpu``            Fig 3 (virtual QPUs / interleaving)         :class:`VQPUStrategy`
``malleable``       Fig 4 (shrink/grow around quantum phases)   :class:`MalleableStrategy`
==================  ==========================================  =========
"""

from repro.strategies.application import (
    HybridApplication,
    Phase,
    PhaseKind,
    classical,
    qaoa_like,
    quantum,
    sampling_campaign,
    vqe_like,
)
from repro.strategies.base import (
    Environment,
    HeldIntegrator,
    IntegrationStrategy,
    RunRecord,
    StrategyRun,
    run_strategies_to_completion,
)
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.envs import make_environment
from repro.strategies.malleability import GrowMode, MalleableStrategy
from repro.strategies.vqpu import VirtualQPU, VirtualQPUPool, VQPUStrategy
from repro.strategies.workflow import (
    Workflow,
    WorkflowEngine,
    WorkflowStep,
    WorkflowStrategy,
)

#: Registry of strategy classes by report name.
STRATEGIES = {
    CoScheduleStrategy.name: CoScheduleStrategy,
    WorkflowStrategy.name: WorkflowStrategy,
    VQPUStrategy.name: VQPUStrategy,
    MalleableStrategy.name: MalleableStrategy,
    ElasticQPUStrategy.name: ElasticQPUStrategy,
}

__all__ = [
    "CoScheduleStrategy",
    "ElasticQPUStrategy",
    "Environment",
    "GrowMode",
    "HeldIntegrator",
    "HybridApplication",
    "IntegrationStrategy",
    "MalleableStrategy",
    "Phase",
    "PhaseKind",
    "RunRecord",
    "STRATEGIES",
    "StrategyRun",
    "VQPUStrategy",
    "VirtualQPU",
    "VirtualQPUPool",
    "Workflow",
    "WorkflowEngine",
    "WorkflowStep",
    "WorkflowStrategy",
    "classical",
    "make_environment",
    "qaoa_like",
    "quantum",
    "run_strategies_to_completion",
    "sampling_campaign",
    "vqe_like",
]
