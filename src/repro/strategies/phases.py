"""Shared phase-execution driver used by the single-job strategies.

Co-scheduling, VQPU and malleability all run the application inside one
batch job; they differ only in how resources are held around the phase
loop.  This module centralises the loop itself so the application's
timing and the record bookkeeping are identical across strategies.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.quantum.circuit import QuantumResult
from repro.scheduler.job import JobContext
from repro.strategies.application import HybridApplication, Phase, PhaseKind
from repro.strategies.base import RunRecord


def execute_phases(
    app: HybridApplication,
    ctx: JobContext,
    record: RunRecord,
    qpu_device: Any,
    nodes_getter: Callable[[], int],
    before_quantum: Callable[[Phase], Any] = None,
    after_quantum: Callable[[Phase], Any] = None,
):
    """Generator: run every phase of ``app`` inside a job context.

    Parameters
    ----------
    qpu_device:
        Object with a ``run(circuit, shots) -> Event`` method (a
        physical :class:`~repro.quantum.qpu.QPU` or a virtual QPU).
    nodes_getter:
        Returns the classical node count in force for the next
        classical phase (malleability changes it mid-run).
    before_quantum / after_quantum:
        Optional sub-generators invoked around each quantum phase
        (malleability shrinks/grows there).  Called as
        ``yield from hook(phase)``.
    """
    for phase in app.phases:
        if phase.kind == PhaseKind.CLASSICAL:
            nodes = nodes_getter()
            duration = app.classical_time(phase, nodes)
            if duration > 0:
                yield ctx.timeout(duration)
            record.classical_useful_node_seconds += duration * nodes
        else:
            if before_quantum is not None:
                yield from before_quantum(phase)
            assert phase.circuit is not None
            result: QuantumResult = yield qpu_device.run(
                phase.circuit, phase.shots, submitter=app.name
            )
            # Pure device-queue wait; calibration is tracked separately.
            record.quantum_access_waits.append(result.queue_time)
            record.qpu_busy_seconds += result.execution_time
            record.qpu_calibration_seconds += result.calibration_time
            if after_quantum is not None:
                yield from after_quantum(phase)
