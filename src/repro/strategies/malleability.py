"""S3 — malleable jobs (paper Fig 4).

The application runs as a *single* batch job (one queue wait total) but
renegotiates its classical allocation at phase boundaries: before a
quantum phase it shrinks to ``min_classical_nodes``, returning nodes to
the scheduler for other jobs; afterwards it grows back.  "The execution
is treated as a single job rather than a sequence of tasks, avoiding
repeated queuing ... during the quantum phase, the job can retain
minimal classical resources, enabling a faster resumption of classical
computation afterward."

The price is application complexity, modelled here as an explicit
``reconfiguration_cost`` paid at every resize (data redistribution,
MPI communicator reconstruction — what DMRlib/AMPI would do), and the
risk that regrowth must wait for free nodes.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.scheduler.job import JobComponent, JobContext, JobSpec
from repro.strategies.application import HybridApplication
from repro.strategies.base import (
    Environment,
    HeldIntegrator,
    IntegrationStrategy,
    StrategyRun,
)
from repro.strategies.phases import execute_phases

#: Default walltime safety factor (regrow waits make malleable jobs'
#: runtime less predictable than rigid ones, so be generous).
WALLTIME_SAFETY = 3.0


class GrowMode(enum.Enum):
    """How the application handles regrowth after a quantum phase."""

    #: Wait until the scheduler grants the full grow request.
    BLOCK = "block"
    #: Continue at the shrunken size; absorb granted nodes at the next
    #: phase boundary ("continue with fewer resources, accepting slower
    #: performance in exchange for reduced queue times").
    OPPORTUNISTIC = "opportunistic"


class MalleableStrategy(IntegrationStrategy):
    """Single malleable hetjob with shrink/grow around quantum phases.

    Parameters
    ----------
    reconfiguration_cost:
        Seconds paid by the application at every resize.
    grow_mode:
        :attr:`GrowMode.BLOCK` (default) or
        :attr:`GrowMode.OPPORTUNISTIC`.
    walltime:
        Explicit job walltime; defaults to ideal makespan times
        ``walltime_safety``.
    """

    name = "malleable"

    def __init__(
        self,
        reconfiguration_cost: float = 5.0,
        grow_mode: GrowMode = GrowMode.BLOCK,
        walltime: Optional[float] = None,
        walltime_safety: float = WALLTIME_SAFETY,
        quantum_nodes: int = 1,
    ) -> None:
        self.reconfiguration_cost = reconfiguration_cost
        self.grow_mode = grow_mode
        self.walltime = walltime
        self.walltime_safety = walltime_safety
        self.quantum_nodes = quantum_nodes

    def _walltime_for(self, env: Environment, app: HybridApplication) -> float:
        if self.walltime is not None:
            return self.walltime
        technology = env.planning_technology(app)
        resizes = 2.0 * app.quantum_phase_count * self.reconfiguration_cost
        return (
            app.ideal_makespan(technology) + resizes
        ) * self.walltime_safety

    def launch(self, env: Environment, app: HybridApplication) -> StrategyRun:
        record = self._new_record(env, app)
        done = env.kernel.event()
        walltime = self._walltime_for(env, app)
        strategy = self

        def work(ctx: JobContext):
            record.start_time = ctx.now
            record.queue_waits.append(ctx.now - record.submit_time)
            device = ctx.first_qpu()
            held = HeldIntegrator(ctx.kernel)
            held.set_count(app.classical_nodes)
            grow_waits = []
            resizes = {"count": 0}
            pending_grow = {"event": None, "count": 0}

            def current_nodes() -> int:
                return ctx.nodes_in("classical")

            def absorb_pending_grow():
                # Opportunistic mode: account nodes granted mid-phase.
                event = pending_grow["event"]
                if event is not None and event.processed:
                    pending_grow["event"] = None
                    pending_grow["count"] = 0
                    held.set_count(current_nodes())

            def shrink_for_quantum(phase):
                absorb_pending_grow()
                release = current_nodes() - app.min_classical_nodes
                if release > 0:
                    ctx.shrink("classical", release)
                    resizes["count"] += 1
                    held.set_count(current_nodes())
                    if strategy.reconfiguration_cost > 0:
                        yield ctx.timeout(strategy.reconfiguration_cost)

            def grow_after_quantum(phase):
                deficit = app.classical_nodes - current_nodes()
                if deficit <= 0:
                    return
                grow_event = ctx.grow("classical", deficit)
                if strategy.grow_mode is GrowMode.BLOCK:
                    requested_at = ctx.now
                    yield grow_event
                    grow_waits.append(ctx.now - requested_at)
                    resizes["count"] += 1
                    held.set_count(current_nodes())
                    if strategy.reconfiguration_cost > 0:
                        yield ctx.timeout(strategy.reconfiguration_cost)
                else:
                    pending_grow["event"] = grow_event
                    pending_grow["count"] = deficit

            def nodes_for_phase() -> int:
                absorb_pending_grow()
                return current_nodes()

            yield from execute_phases(
                app,
                ctx,
                record,
                qpu_device=device,
                nodes_getter=nodes_for_phase,
                before_quantum=shrink_for_quantum,
                after_quantum=grow_after_quantum,
            )
            record.classical_held_node_seconds = held.finish()
            record.details["resizes"] = resizes["count"]
            record.details["grow_waits_s"] = grow_waits
            record.details["reconfiguration_cost_s"] = (
                strategy.reconfiguration_cost
            )

        spec = JobSpec(
            name=f"{app.name}:malleable",
            components=[
                JobComponent("classical", app.classical_nodes, walltime),
                JobComponent(
                    "quantum", self.quantum_nodes, walltime, gres={"qpu": 1}
                ),
            ],
            user=app.name,
            work=work,
            tags={"strategy": self.name, "app": app.name},
        )
        job = env.scheduler.submit(spec)
        record.details["walltime_s"] = walltime
        record.details["grow_mode"] = self.grow_mode.value

        def on_finished(event) -> None:
            record.end_time = env.kernel.now
            record.details["final_state"] = event.value.value
            if record.start_time is not None:
                record.qpu_held_seconds = (
                    record.end_time - record.start_time
                )
            done.succeed(record)

        job.finished.callbacks.append(on_finished)
        return StrategyRun(record, done)
