"""Named scenario presets.

The registry maps short stable names to :class:`ScenarioSpec` values so
experiments, sweeps, tests and the CLI can all say ``baseline-32``
instead of re-declaring the facility.  Presets are plain data — grab
one with :func:`get_scenario`, perturb it with
:func:`repro.scenarios.spec.with_overrides` or ``dataclasses.replace``,
and hand it to :func:`repro.scenarios.build.build`.

Register additional scenarios (e.g. from a site-specific module) with
:func:`register_scenario`; names are unique and first registration
wins permanently unless ``replace=True``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    DeviceSpec,
    FaultSchedule,
    FleetSpec,
    NodeFault,
    PolicySpec,
    QPUMaintenance,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, replace: bool = False
) -> ScenarioSpec:
    """Add ``spec`` to the registry under ``spec.name``."""
    spec.validate()
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"scenario {spec.name!r} already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """The registered preset called ``name``.

    >>> get_scenario("baseline-32").topology.classical_nodes
    32
    >>> get_scenario("trace-replay").workload.trace.path
    'sample-32n.swf'
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {list_scenarios()}"
        ) from None


def list_scenarios() -> List[str]:
    """Registered preset names, sorted.

    >>> "baseline-32" in list_scenarios()
    True
    """
    return sorted(_REGISTRY)


# -- built-in presets --------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="baseline-32",
        description=(
            "The paper's canonical facility: 32 classical nodes, one "
            "superconducting QPU behind a qpu gres, EASY backfill, and "
            "a moderate (rho=0.85) Poisson background over 4 h."
        ),
        topology=TopologySpec(classical_nodes=32),
        fleet=FleetSpec(technology="superconducting"),
        workload=WorkloadSpec(background_rho=0.85, horizon=4 * 3600.0),
    )
)

register_scenario(
    ScenarioSpec(
        name="multitenant-vqpu",
        description=(
            "Fig 3's multitenancy substrate: one physical "
            "superconducting QPU exposed as 8 virtual QPU gres units "
            "to a 64-node classical partition under load."
        ),
        topology=TopologySpec(classical_nodes=64),
        fleet=FleetSpec(technology="superconducting", vqpus_per_qpu=8),
        workload=WorkloadSpec(background_rho=0.7, horizon=4 * 3600.0),
        policy=PolicySpec(scheduling_cycle=30.0),
    )
)

register_scenario(
    ScenarioSpec(
        name="failure-storm",
        description=(
            "Dependability stress: stochastic node churn (MTBF 2 h, "
            "20 min repairs) on the classical partition plus a timed "
            "storm — three nodes fail together at t=30 min, one "
            "front-end drain, and a QPU maintenance window — under a "
            "near-saturated background."
        ),
        topology=TopologySpec(classical_nodes=32),
        fleet=FleetSpec(technology="superconducting"),
        workload=WorkloadSpec(background_rho=0.95, horizon=4 * 3600.0),
        policy=PolicySpec(policy="conservative", scheduling_cycle=30.0),
        faults=FaultSchedule(
            events=(
                NodeFault(time=1800.0, action="fail", node="cn0003"),
                NodeFault(time=1800.0, action="fail", node="cn0004"),
                NodeFault(time=1800.0, action="fail", node="cn0005"),
                NodeFault(time=2400.0, action="drain", node="cn0010"),
                NodeFault(time=5400.0, action="repair", node="cn0003"),
                NodeFault(time=5400.0, action="repair", node="cn0004"),
                NodeFault(time=5400.0, action="repair", node="cn0005"),
                NodeFault(time=7200.0, action="undrain", node="cn0010"),
            ),
            maintenance=(
                QPUMaintenance(
                    qpu="superconducting-0", start=3600.0, duration=900.0
                ),
            ),
            random_failures=RandomFailures(
                mtbf=2 * 3600.0, mean_repair_time=1200.0
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="bursty-campaign",
        description=(
            "Bursty arrivals: the rho=0.9 background hits the 32-node "
            "partition through a day/night-modulated (diurnal) arrival "
            "process with 4 h period, so queue depth breathes instead "
            "of holding steady."
        ),
        topology=TopologySpec(classical_nodes=32),
        fleet=FleetSpec(technology="superconducting"),
        workload=WorkloadSpec(
            background_rho=0.9,
            horizon=8 * 3600.0,
            arrivals="diurnal",
            burst_amplitude=0.8,
            burst_period=4 * 3600.0,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="large-1k",
        description=(
            "Production scale: 1024 classical nodes, four "
            "superconducting QPUs each split into 4 VQPUs, EASY "
            "backfill with a 30 s cycle, and a rho=0.8 background "
            "over 2 h."
        ),
        topology=TopologySpec(classical_nodes=1024),
        fleet=FleetSpec(
            technology="superconducting", qpu_count=4, vqpus_per_qpu=4
        ),
        workload=WorkloadSpec(
            background_rho=0.8,
            horizon=2 * 3600.0,
            min_nodes=2,
            max_nodes=64,
        ),
        policy=PolicySpec(scheduling_cycle=30.0),
    )
)

register_scenario(
    ScenarioSpec(
        name="trace-replay",
        description=(
            "Trace-driven workload replay: the checked-in synthetic "
            "SWF sample (64 archive-shaped jobs, offered load ~0.86) "
            "replayed onto the 32-node baseline under EASY backfill.  "
            "Sweepable via workload.trace.* dotted paths "
            "(time_scale, runtime_scale, qpu_fraction, ...)."
        ),
        topology=TopologySpec(classical_nodes=32),
        fleet=FleetSpec(technology="superconducting"),
        workload=WorkloadSpec(
            horizon=4 * 3600.0,
            trace=TraceSpec(path="sample-32n.swf"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="mixed-fleet",
        description=(
            "A heterogeneous facility the paper's Section 3 "
            "anticipates: two superconducting devices, a trapped-ion "
            "machine and a neutral-atom machine behind one quantum "
            "partition, kernels dispatched under earliest-finish-time "
            "routing.  Sweepable via fleet.routing and per-group "
            "fleet.devices.N.* dotted paths; a trace replay sends a "
            "quarter of the archive jobs to the quantum partition."
        ),
        topology=TopologySpec(classical_nodes=32),
        fleet=FleetSpec(
            devices=(
                DeviceSpec(technology="superconducting", count=2),
                DeviceSpec(technology="trapped_ion"),
                DeviceSpec(technology="neutral_atom"),
            ),
            routing="fastest_completion",
        ),
        workload=WorkloadSpec(
            horizon=4 * 3600.0,
            trace=TraceSpec(path="sample-32n.swf", qpu_fraction=0.25),
        ),
        faults=FaultSchedule(
            maintenance=(
                QPUMaintenance(
                    qpu="superconducting-1", start=3600.0, duration=1800.0
                ),
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="neutral-atom-hours",
        description=(
            "The slow-QPU regime: a neutral-atom device (jobs beyond "
            "30 min including geometry calibration) behind a 16-node "
            "classical partition — the direction of co-scheduling "
            "waste flips versus superconducting."
        ),
        topology=TopologySpec(classical_nodes=16),
        fleet=FleetSpec(technology="neutral_atom"),
        workload=WorkloadSpec(background_rho=0.5, horizon=6 * 3600.0),
    )
)
