"""Build a live facility from a :class:`ScenarioSpec`.

One pipeline — :func:`build` — turns the declarative scenario tree into
the :class:`~repro.strategies.base.Environment` every strategy and
experiment runs against: kernel, random streams, QPU fleet (optionally
virtualised), two-partition cluster, batch scheduler, and the
scenario's fault schedule installed into the kernel (timed node
fail/repair/drain/undrain events, booked QPU maintenance windows and
optional stochastic failure churn).

Construction order matters: it is *exactly* the order the historical
``make_environment`` factory used (kernel, streams, QPUs, cluster,
scheduler), so a spec with an empty fault schedule and no background
workload reproduces pre-scenario results event for event.

:func:`run_scenario` additionally injects the spec's background
workload, drives the kernel to the horizon and returns facility-level
metrics — the CLI's ``scenario run`` and the generic sweep runner both
go through it.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.builders import QUANTUM_PARTITION, build_hpcqc_cluster
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.quantum.fleet import QPUFleet
from repro.quantum.qpu import QPU
from repro.quantum.technology import TECHNOLOGIES
from repro.scenarios.spec import (
    FaultSchedule,
    FleetSpec,
    ScenarioSpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.scheduler.backfill import make_policy
from repro.scheduler.job import Job, JobComponent, JobState
from repro.scheduler.priority import MultifactorPriority, PriorityWeights
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams, derive_seed
from repro.strategies.base import Environment
from repro.strategies.vqpu import VirtualQPUPool
from repro.workloads.arrivals import DiurnalArrivals
from repro.workloads.distributions import LogUniform, PowerOfTwoNodes
from repro.workloads.generator import submit_trace
from repro.workloads.swf import (
    TraceJob,
    clip_trace,
    jitter_trace,
    loop_trace,
    read_swf,
    rescale_trace,
    synthesise_trace,
    truncate_trace,
)


def build(spec: ScenarioSpec, seed: Optional[int] = None) -> Environment:
    """Materialise ``spec`` into a fresh :class:`Environment`.

    ``seed`` overrides ``spec.seed`` (sweeps derive one seed per grid
    point and pass it here).  The spec is validated first, so malformed
    scenarios fail before any simulation state exists.
    """
    spec.validate()
    kernel = Kernel()
    streams = RandomStreams(spec.seed if seed is None else seed)
    qpus, devices, pools = build_fleet_devices(
        kernel, spec.fleet, streams
    )

    # One front-end node per (virtual) QPU gres unit: node allocation is
    # whole-node exclusive, so co-tenancy requires one schedulable node
    # slot per virtual unit (gateway nodes are cheap in practice).
    cluster: Cluster = build_hpcqc_cluster(
        kernel,
        classical_nodes=spec.topology.classical_nodes,
        qpu_devices=devices,
        qpus_per_node=spec.topology.qpus_per_node,
        classical_max_walltime=spec.topology.classical_max_walltime,
        quantum_max_walltime=spec.topology.quantum_max_walltime,
        cores_per_node=spec.topology.cores_per_node,
        record_history=spec.monitoring.record_history,
    )
    scheduler_priority = MultifactorPriority(
        weights=PriorityWeights(
            age=spec.policy.priority_age,
            size=spec.policy.priority_size,
            fairshare=spec.policy.priority_fairshare,
            qos=spec.policy.priority_qos,
        ),
        total_nodes=cluster.total_nodes(),
    )
    from repro.scheduler.scheduler import BatchScheduler

    scheduler = BatchScheduler(
        kernel,
        cluster,
        policy=make_policy(spec.policy.policy),
        priority=scheduler_priority,
        cycle_time=spec.policy.scheduling_cycle,
    )
    env = Environment(
        kernel=kernel,
        cluster=cluster,
        scheduler=scheduler,
        qpus=qpus,
        streams=streams,
        vqpu_pools=pools,
        fleet=QPUFleet(qpus, policy=spec.fleet.routing),
    )
    install_faults(env, spec.faults)
    return env


def fleet_device_rows(fleet: FleetSpec) -> List[Dict[str, Any]]:
    """One row per physical device a :class:`FleetSpec` will build.

    Rows carry ``name``, ``technology``, ``qubits`` and ``vqpus`` in
    construction order; the build pipeline and the CLI's device table
    both read fleet composition from here, so the table always shows
    exactly the devices an environment will contain.  Names are
    ``{prefix}-{index}`` with the prefix taken from the group's
    ``name`` (default: the technology name) and indices counted per
    prefix across the whole fleet — the flat single-technology
    shorthand therefore reproduces the historical
    ``{technology}-{index}`` names byte for byte.
    """
    rows: List[Dict[str, Any]] = []
    prefix_counters: Dict[str, int] = {}
    for group in fleet.canonical_devices():
        technology = TECHNOLOGIES[group.technology]
        prefix = group.name or technology.name
        for _ in range(group.count):
            index = prefix_counters.get(prefix, 0)
            prefix_counters[prefix] = index + 1
            rows.append(
                {
                    "name": f"{prefix}-{index}",
                    "technology": group.technology,
                    "qubits": technology.num_qubits,
                    "vqpus": group.vqpus_per_qpu,
                }
            )
    return rows


def build_fleet_devices(
    kernel: Kernel, fleet: FleetSpec, streams: RandomStreams
) -> Tuple[List[QPU], List[object], List[VirtualQPUPool]]:
    """Materialise a :class:`FleetSpec` into physical and gres devices.

    Returns ``(qpus, gres_devices, vqpu_pools)``: the physical devices
    in declaration order, the (possibly virtualised) device objects to
    expose as ``qpu`` gres units, and any virtual-QPU pools created.
    Composition and naming come from :func:`fleet_device_rows`.
    """
    qpus: List[QPU] = []
    gres_devices: List[object] = []
    pools: List[VirtualQPUPool] = []
    for row in fleet_device_rows(fleet):
        qpu = QPU(
            kernel,
            TECHNOLOGIES[row["technology"]],
            name=row["name"],
            streams=streams if fleet.jitter else None,
        )
        qpus.append(qpu)
        if row["vqpus"] > 1:
            pool = VirtualQPUPool(qpu, row["vqpus"])
            pools.append(pool)
            gres_devices.extend(pool.virtual_qpus)
        else:
            gres_devices.append(qpu)
    return qpus, gres_devices, pools


# -- fault installation ------------------------------------------------------


def install_faults(env: Environment, faults: FaultSchedule) -> None:
    """Install ``faults`` into a live environment's kernel.

    Deterministic events run through one driver process (stable order:
    time, then declaration order); maintenance windows are booked on
    the named QPUs immediately; stochastic churn attaches a
    :class:`FailureInjector` to the named partition.  Failed nodes
    report evictions to the scheduler so jobs are requeued, exactly as
    the random injector does.  An empty schedule installs nothing —
    not even a kernel process.
    """
    if faults.is_empty():
        return
    nodes = _nodes_by_name(env)
    for event in faults.events:
        if event.node not in nodes:
            raise ConfigurationError(
                f"fault event targets unknown node {event.node!r}"
            )
    qpus = {qpu.name: qpu for qpu in env.qpus}
    for window in faults.maintenance:
        if window.qpu not in qpus:
            raise ConfigurationError(
                f"maintenance window targets unknown QPU {window.qpu!r}; "
                f"fleet: {sorted(qpus)}"
            )
        qpus[window.qpu].schedule_maintenance(window.start, window.duration)
    if faults.events:
        env.kernel.process(
            _fault_driver(env, nodes, faults), name="faults:schedule"
        )
    if faults.random_failures is not None:
        churn = faults.random_failures
        partition = env.cluster.partition(churn.partition)
        injector = FailureInjector(
            env.kernel,
            partition.nodes,
            mtbf=churn.mtbf,
            mean_repair_time=churn.mean_repair_time,
            streams=env.streams,
            on_failure=env.scheduler.on_node_failure,
        )
        env.fault_injectors.append(injector)


def _nodes_by_name(env: Environment) -> Dict[str, Node]:
    return {
        node.name: node
        for partition in env.cluster.partitions.values()
        for node in partition.nodes
    }


def _fault_driver(env: Environment, nodes: Dict[str, Node], faults):
    """Replay the deterministic fault events in (time, declaration) order."""
    ordered = sorted(
        enumerate(faults.events), key=lambda pair: (pair[1].time, pair[0])
    )
    for _, event in ordered:
        if event.time > env.kernel.now:
            yield env.kernel.timeout(event.time - env.kernel.now)
        node = nodes[event.node]
        if event.action == "fail":
            evicted = node.mark_down()
            env.scheduler.on_node_failure(node, evicted)
        elif event.action == "repair":
            node.mark_up()
        elif event.action == "drain":
            node.drain()
        else:  # "undrain" — validated upstream
            node.mark_up()


# -- background workload -----------------------------------------------------


def offered_load_interarrival(
    rho: float,
    cluster_nodes: int,
    mean_job_nodes: float,
    mean_job_runtime: float,
) -> float:
    """Mean interarrival producing offered load ``rho`` on the partition.

    Offered load is node-seconds demanded per node-second of capacity:
    ``rho = nodes × runtime / (interarrival × cluster_nodes)``.

    >>> offered_load_interarrival(
    ...     1.0, cluster_nodes=32, mean_job_nodes=4, mean_job_runtime=800
    ... )
    100.0
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    return (mean_job_nodes * mean_job_runtime) / (rho * cluster_nodes)


def background_trace(
    env: Environment,
    workload: WorkloadSpec,
    seed_name: str = "background",
) -> List[TraceJob]:
    """Synthesise the scenario's background trace (empty if rho == 0)."""
    if workload.background_rho <= 0 or workload.horizon <= 0:
        return []
    rng = env.streams.stream(seed_name)
    sizes = PowerOfTwoNodes(workload.min_nodes, workload.max_nodes)
    runtimes = LogUniform(workload.min_runtime, workload.max_runtime)
    cluster_nodes = env.cluster.partition("classical").node_count
    interarrival = offered_load_interarrival(
        workload.background_rho, cluster_nodes, sizes.mean(), runtimes.mean()
    )
    if workload.arrivals == "poisson":
        job_count = max(int(workload.horizon / interarrival) + 1, 1)
        return synthesise_trace(
            rng,
            job_count=job_count,
            mean_interarrival=interarrival,
            runtimes=runtimes,
            sizes=sizes,
        )
    # Diurnal (bursty) arrivals: same per-job marginals as the Poisson
    # trace, but submission times from the thinned day/night process.
    # times() is already bounded by the horizon; no count cap, so dense
    # realisations keep their late-horizon bursts and the delivered
    # offered load stays centred on rho.
    arrivals = DiurnalArrivals(
        interarrival,
        amplitude=workload.burst_amplitude,
        period=workload.burst_period,
    )
    jobs: List[TraceJob] = []
    walltime_overestimate = 2.0
    for index, submit in enumerate(
        arrivals.times(rng, workload.horizon)
    ):
        runtime = float(runtimes.sample(rng))
        jobs.append(
            TraceJob(
                job_id=index + 1,
                submit_time=submit,
                runtime=runtime,
                nodes=int(sizes.sample(rng)),
                requested_walltime=runtime * walltime_overestimate,
                user=f"user{int(rng.integers(0, 8))}",
            )
        )
    return jobs


def install_background(env: Environment, workload: WorkloadSpec) -> List:
    """Submit the scenario's background workload; returns the jobs."""
    trace = background_trace(env, workload)
    if not trace:
        return []
    return submit_trace(env, trace)


# -- trace replay -------------------------------------------------------------

#: Packaged sample traces (checked-in, synthetic, redistributable).
TRACE_DATA_DIR = (
    Path(__file__).resolve().parent.parent / "workloads" / "data"
)


def resolve_trace_path(path: str) -> Path:
    """Locate a :class:`TraceSpec` SWF file.

    Absolute paths are used as-is; relative paths resolve against the
    working directory first and then the packaged sample directory
    (``repro/workloads/data``), so presets can ship a checked-in trace
    while user scenarios reference local files.
    """
    candidate = Path(path)
    if candidate.is_absolute():
        if candidate.is_file():
            return candidate
        raise ConfigurationError(f"trace file not found: {path}")
    tried = []
    for root in (Path.cwd(), TRACE_DATA_DIR):
        resolved = root / candidate
        if resolved.is_file():
            return resolved
        tried.append(str(resolved))
    raise ConfigurationError(
        f"trace file {path!r} not found; tried: {tried}"
    )


@lru_cache(maxsize=32)
def _parsed_swf(
    path: str, mtime_ns: int, size: int
) -> Tuple[TraceJob, ...]:
    """Parsed jobs of one SWF file, memoised per (path, stat).

    Sweeps compile the same trace once per grid point; archive traces
    run to 100k+ lines, so re-parsing would dominate small-horizon
    sweep time.  The stat components key out edits to the file.
    """
    return tuple(read_swf(path))


def load_trace_jobs(trace: TraceSpec) -> List[TraceJob]:
    """The raw jobs a :class:`TraceSpec` names, before replay rules."""
    if trace.path is not None:
        resolved = resolve_trace_path(trace.path)
        stat = resolved.stat()
        return list(
            _parsed_swf(str(resolved), stat.st_mtime_ns, stat.st_size)
        )
    return [
        TraceJob(**dataclasses.asdict(job)) for job in trace.jobs
    ]


def compile_trace(
    trace: TraceSpec,
    horizon: float,
    rng=None,
) -> List[TraceJob]:
    """Apply a :class:`TraceSpec`'s replay rules, in documented order.

    Truncate to ``limit``, rescale times and durations, loop or clip to
    the horizon, then jitter submit times (``rng`` supplies the draws;
    required only when ``trace.jitter > 0``).  Pure given its inputs,
    so two processes compiling the same spec agree job for job.
    """
    jobs = truncate_trace(load_trace_jobs(trace), trace.limit)
    jobs = rescale_trace(jobs, trace.time_scale, trace.runtime_scale)
    if trace.loop:
        jobs = loop_trace(jobs, horizon)
    else:
        jobs = clip_trace(jobs, horizon)
    if trace.jitter > 0:
        if rng is None:
            raise ConfigurationError(
                "trace.jitter > 0 needs a random stream"
            )
        jobs = jitter_trace(jobs, rng, trace.jitter)
    return jobs


#: Quantum-partition mapping: the stable per-job hash threshold used by
#: ``TraceSpec.qpu_fraction`` (seed-independent, so *which* jobs are
#: hybrid never changes between replications).
_QPU_HASH_SCALE = float(2**64)


def _routes_to_qpu(job: TraceJob, fraction: float) -> bool:
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    draw = derive_seed(job.job_id, "trace:qpu-route") / _QPU_HASH_SCALE
    return draw < fraction


def trace_component_mapper(
    env: Environment, trace: TraceSpec
) -> Callable[[TraceJob], Optional[List[JobComponent]]]:
    """The per-job resource mapping a :class:`TraceSpec` describes.

    Jobs land on ``trace.partition``; jobs wider than ``max_nodes``
    (default: the partition width) are clamped, dropped or rejected per
    ``trace.oversize``; a ``qpu_fraction`` subset becomes single-node
    quantum jobs demanding one ``qpu`` gres unit.
    """
    partition = env.cluster.partition(trace.partition)
    cap = partition.node_count
    if trace.max_nodes is not None:
        cap = min(cap, trace.max_nodes)
    if cap < 1:
        raise ConfigurationError(
            f"trace partition {trace.partition!r} has no nodes"
        )

    def mapper(job: TraceJob) -> Optional[List[JobComponent]]:
        if _routes_to_qpu(job, trace.qpu_fraction):
            return [
                JobComponent(
                    QUANTUM_PARTITION,
                    1,
                    job.requested_walltime,
                    gres={"qpu": 1},
                )
            ]
        nodes = job.nodes
        if nodes > cap:
            if trace.oversize == "drop":
                return None
            if trace.oversize == "error":
                raise ConfigurationError(
                    f"trace job {job.job_id} needs {nodes} nodes but "
                    f"partition {trace.partition!r} caps at {cap} "
                    "(oversize='error')"
                )
            nodes = cap
        return [JobComponent(trace.partition, nodes, job.requested_walltime)]

    return mapper


def trace_kernel_worker(
    env: Environment, trace: TraceSpec
) -> Optional[Callable[[TraceJob], Optional[Callable]]]:
    """The fleet-dispatch work mapper for quantum-mapped trace jobs.

    A trace job that lands on the quantum partition carries one
    representative kernel payload
    (:func:`repro.workloads.hybrid.trace_kernel_payload`).  At job
    start the payload is dispatched through the environment's
    :class:`~repro.quantum.fleet.QPUFleet` — the routing policy picks
    the device — while the job occupies its allocation for the trace
    runtime, exactly as a rigid replay would.  ``None`` when the
    workload routes nothing to the fleet.

    Virtualised gres units are the exception: a job holding a
    *virtual* QPU lease dispatches through that lease instead of the
    fleet router, so the pool's admission bound (at most ``V - 1``
    foreign kernels ahead of any request) survives trace replay.
    """
    if trace.qpu_fraction <= 0 or env.fleet is None:
        return None
    from repro.workloads.hybrid import trace_kernel_payload

    fleet = env.fleet
    max_qubits = max(q.technology.num_qubits for q in fleet.qpus)

    def work_for(job: TraceJob) -> Optional[Callable]:
        if not _routes_to_qpu(job, trace.qpu_fraction):
            return None

        def work(ctx):
            device = ctx.first_qpu()
            if isinstance(device, QPU):
                circuit, shots = trace_kernel_payload(
                    job.job_id, max_qubits
                )
                fleet.run(circuit, shots, submitter=job.user)
            else:
                # A virtual QPU lease: stay inside its admission
                # control, clamped to the backing device's register.
                circuit, shots = trace_kernel_payload(
                    job.job_id, device.technology.num_qubits
                )
                device.run(circuit, shots, submitter=job.user)
            yield ctx.timeout(job.runtime)

        return work

    return work_for


def install_trace(
    env: Environment, workload: WorkloadSpec, horizon: float
) -> List[Job]:
    """Submit the scenario's trace replay; returns the jobs.

    No-op (empty list) when the workload has no trace source.  The
    jitter stream is only consumed when ``trace.jitter > 0``, so
    trace-free and jitter-free scenarios draw exactly what they drew
    before trace support existed.
    """
    trace = workload.trace
    if trace is None:
        return []
    rng = (
        env.streams.stream("trace-jitter") if trace.jitter > 0 else None
    )
    jobs = compile_trace(trace, horizon, rng=rng)
    if not jobs:
        return []
    return submit_trace(
        env,
        jobs,
        components_for=trace_component_mapper(env, trace),
        work_for=trace_kernel_worker(env, trace),
    )


# -- end-to-end scenario run -------------------------------------------------

#: Fallback horizon for scenarios that specify no workload horizon.
DEFAULT_HORIZON = 3600.0


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Dict[str, Any]:
    """Build, load and drive one scenario; return facility metrics.

    The kernel runs for ``horizon`` simulated seconds (default: the
    workload's horizon, else :data:`DEFAULT_HORIZON` — scenarios with
    stochastic fault churn never quiesce, so an explicit stop time is
    required).  The returned mapping is flat, canonically ordered and
    JSON-representable, so sweep results over scenarios serialise
    byte-identically serial vs parallel.
    """
    env = build(spec, seed=seed)
    jobs = install_background(env, spec.workload)
    until = horizon
    if until is None:
        until = spec.workload.horizon or DEFAULT_HORIZON
    trace_jobs = install_trace(env, spec.workload, until)
    env.kernel.run(until=until)
    completed = sum(
        1 for job in jobs if job.state == JobState.COMPLETED
    )
    metrics: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": spec.seed if seed is None else seed,
        "horizon_s": until,
        "background_jobs": len(jobs),
        "background_completed": completed,
        "queue_depth": env.scheduler.queue_depth,
        "finished_jobs": len(env.scheduler.finished_jobs),
    }
    metrics.update(_trace_metrics(trace_jobs))
    for name in sorted(env.cluster.partitions):
        metrics[f"utilisation_{name}"] = env.cluster.node_utilisation(name)
    for index, qpu in enumerate(env.qpus):
        metrics[f"qpu{index}_utilisation"] = qpu.utilisation
        metrics[f"qpu{index}_maintenance"] = qpu.maintenance_performed
    if env.fleet is not None:
        metrics["fleet_policy"] = env.fleet.policy
        metrics["fleet_routed_total"] = env.fleet.total_routed
        for qpu in env.fleet.qpus:
            routed = env.fleet.routed_counts[qpu.name]
            metrics[f"device_{qpu.name}_routed"] = routed
            metrics[f"device_{qpu.name}_executed"] = qpu.jobs_executed
            metrics[f"device_{qpu.name}_utilisation"] = qpu.utilisation
    failures = sum(i.failure_count for i in env.fault_injectors)
    repairs = sum(i.repair_count for i in env.fault_injectors)
    metrics["random_failures"] = failures
    metrics["random_repairs"] = repairs
    metrics["node_states"] = _node_state_counts(env)
    return metrics


def _trace_metrics(trace_jobs: List[Job]) -> Dict[str, Any]:
    """Flat replay metrics: counts plus mean wait and bounded slowdown."""
    from repro.metrics.stats import mean

    completed = [
        job for job in trace_jobs if job.state == JobState.COMPLETED
    ]
    waits = [
        job.wait_time for job in completed if job.wait_time is not None
    ]
    slowdowns = [
        slowdown
        for slowdown in (job.slowdown() for job in completed)
        if slowdown is not None
    ]
    return {
        "trace_jobs": len(trace_jobs),
        "trace_completed": len(completed),
        "trace_mean_wait_s": mean(waits),
        "trace_mean_slowdown": mean(slowdowns),
    }


def _node_state_counts(env: Environment) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for partition in env.cluster.partitions.values():
        for node in partition.nodes:
            counts[node.state.value] = counts.get(node.state.value, 0) + 1
    return dict(sorted(counts.items()))
