"""Build a live facility from a :class:`ScenarioSpec`.

One pipeline — :func:`build` — turns the declarative scenario tree into
the :class:`~repro.strategies.base.Environment` every strategy and
experiment runs against: kernel, random streams, QPU fleet (optionally
virtualised), two-partition cluster, batch scheduler, and the
scenario's fault schedule installed into the kernel (timed node
fail/repair/drain/undrain events, booked QPU maintenance windows and
optional stochastic failure churn).

Construction order matters: it is *exactly* the order the historical
``make_environment`` factory used (kernel, streams, QPUs, cluster,
scheduler), so a spec with an empty fault schedule and no background
workload reproduces pre-scenario results event for event.

:func:`run_scenario` additionally injects the spec's background
workload, drives the kernel to the horizon and returns facility-level
metrics — the CLI's ``scenario run`` and the generic sweep runner both
go through it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster.builders import build_hpcqc_cluster
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.quantum.qpu import QPU
from repro.quantum.technology import TECHNOLOGIES
from repro.scenarios.spec import (
    FaultSchedule,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.scheduler.backfill import make_policy
from repro.scheduler.job import JobState
from repro.scheduler.priority import MultifactorPriority, PriorityWeights
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams
from repro.strategies.base import Environment
from repro.strategies.vqpu import VirtualQPUPool
from repro.workloads.arrivals import DiurnalArrivals
from repro.workloads.distributions import LogUniform, PowerOfTwoNodes
from repro.workloads.generator import submit_trace
from repro.workloads.swf import TraceJob, synthesise_trace


def build(spec: ScenarioSpec, seed: Optional[int] = None) -> Environment:
    """Materialise ``spec`` into a fresh :class:`Environment`.

    ``seed`` overrides ``spec.seed`` (sweeps derive one seed per grid
    point and pass it here).  The spec is validated first, so malformed
    scenarios fail before any simulation state exists.
    """
    spec.validate()
    technology = TECHNOLOGIES[spec.fleet.technology]
    kernel = Kernel()
    streams = RandomStreams(spec.seed if seed is None else seed)
    qpus: List[QPU] = [
        QPU(
            kernel,
            technology,
            name=f"{technology.name}-{index}",
            streams=streams if spec.fleet.jitter else None,
        )
        for index in range(spec.fleet.qpu_count)
    ]
    if spec.fleet.vqpus_per_qpu > 1:
        devices: List[object] = []
        pools: List[VirtualQPUPool] = []
        for qpu in qpus:
            pool = VirtualQPUPool(qpu, spec.fleet.vqpus_per_qpu)
            pools.append(pool)
            devices.extend(pool.virtual_qpus)
    else:
        devices = list(qpus)
        pools = []

    # One front-end node per (virtual) QPU gres unit: node allocation is
    # whole-node exclusive, so co-tenancy requires one schedulable node
    # slot per virtual unit (gateway nodes are cheap in practice).
    cluster: Cluster = build_hpcqc_cluster(
        kernel,
        classical_nodes=spec.topology.classical_nodes,
        qpu_devices=devices,
        qpus_per_node=spec.topology.qpus_per_node,
        classical_max_walltime=spec.topology.classical_max_walltime,
        quantum_max_walltime=spec.topology.quantum_max_walltime,
        cores_per_node=spec.topology.cores_per_node,
        record_history=spec.monitoring.record_history,
    )
    scheduler_priority = MultifactorPriority(
        weights=PriorityWeights(
            age=spec.policy.priority_age,
            size=spec.policy.priority_size,
            fairshare=spec.policy.priority_fairshare,
            qos=spec.policy.priority_qos,
        ),
        total_nodes=cluster.total_nodes(),
    )
    from repro.scheduler.scheduler import BatchScheduler

    scheduler = BatchScheduler(
        kernel,
        cluster,
        policy=make_policy(spec.policy.policy),
        priority=scheduler_priority,
        cycle_time=spec.policy.scheduling_cycle,
    )
    env = Environment(
        kernel=kernel,
        cluster=cluster,
        scheduler=scheduler,
        qpus=qpus,
        streams=streams,
        vqpu_pools=pools,
    )
    install_faults(env, spec.faults)
    return env


# -- fault installation ------------------------------------------------------


def install_faults(env: Environment, faults: FaultSchedule) -> None:
    """Install ``faults`` into a live environment's kernel.

    Deterministic events run through one driver process (stable order:
    time, then declaration order); maintenance windows are booked on
    the named QPUs immediately; stochastic churn attaches a
    :class:`FailureInjector` to the named partition.  Failed nodes
    report evictions to the scheduler so jobs are requeued, exactly as
    the random injector does.  An empty schedule installs nothing —
    not even a kernel process.
    """
    if faults.is_empty():
        return
    nodes = _nodes_by_name(env)
    for event in faults.events:
        if event.node not in nodes:
            raise ConfigurationError(
                f"fault event targets unknown node {event.node!r}"
            )
    qpus = {qpu.name: qpu for qpu in env.qpus}
    for window in faults.maintenance:
        if window.qpu not in qpus:
            raise ConfigurationError(
                f"maintenance window targets unknown QPU {window.qpu!r}; "
                f"fleet: {sorted(qpus)}"
            )
        qpus[window.qpu].schedule_maintenance(window.start, window.duration)
    if faults.events:
        env.kernel.process(
            _fault_driver(env, nodes, faults), name="faults:schedule"
        )
    if faults.random_failures is not None:
        churn = faults.random_failures
        partition = env.cluster.partition(churn.partition)
        injector = FailureInjector(
            env.kernel,
            partition.nodes,
            mtbf=churn.mtbf,
            mean_repair_time=churn.mean_repair_time,
            streams=env.streams,
            on_failure=env.scheduler.on_node_failure,
        )
        env.fault_injectors.append(injector)


def _nodes_by_name(env: Environment) -> Dict[str, Node]:
    return {
        node.name: node
        for partition in env.cluster.partitions.values()
        for node in partition.nodes
    }


def _fault_driver(env: Environment, nodes: Dict[str, Node], faults):
    """Replay the deterministic fault events in (time, declaration) order."""
    ordered = sorted(
        enumerate(faults.events), key=lambda pair: (pair[1].time, pair[0])
    )
    for _, event in ordered:
        if event.time > env.kernel.now:
            yield env.kernel.timeout(event.time - env.kernel.now)
        node = nodes[event.node]
        if event.action == "fail":
            evicted = node.mark_down()
            env.scheduler.on_node_failure(node, evicted)
        elif event.action == "repair":
            node.mark_up()
        elif event.action == "drain":
            node.drain()
        else:  # "undrain" — validated upstream
            node.mark_up()


# -- background workload -----------------------------------------------------


def offered_load_interarrival(
    rho: float,
    cluster_nodes: int,
    mean_job_nodes: float,
    mean_job_runtime: float,
) -> float:
    """Mean interarrival producing offered load ``rho`` on the partition.

    Offered load is node-seconds demanded per node-second of capacity:
    ``rho = nodes × runtime / (interarrival × cluster_nodes)``.
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    return (mean_job_nodes * mean_job_runtime) / (rho * cluster_nodes)


def background_trace(
    env: Environment,
    workload: WorkloadSpec,
    seed_name: str = "background",
) -> List[TraceJob]:
    """Synthesise the scenario's background trace (empty if rho == 0)."""
    if workload.background_rho <= 0 or workload.horizon <= 0:
        return []
    rng = env.streams.stream(seed_name)
    sizes = PowerOfTwoNodes(workload.min_nodes, workload.max_nodes)
    runtimes = LogUniform(workload.min_runtime, workload.max_runtime)
    cluster_nodes = env.cluster.partition("classical").node_count
    interarrival = offered_load_interarrival(
        workload.background_rho, cluster_nodes, sizes.mean(), runtimes.mean()
    )
    if workload.arrivals == "poisson":
        job_count = max(int(workload.horizon / interarrival) + 1, 1)
        return synthesise_trace(
            rng,
            job_count=job_count,
            mean_interarrival=interarrival,
            runtimes=runtimes,
            sizes=sizes,
        )
    # Diurnal (bursty) arrivals: same per-job marginals as the Poisson
    # trace, but submission times from the thinned day/night process.
    # times() is already bounded by the horizon; no count cap, so dense
    # realisations keep their late-horizon bursts and the delivered
    # offered load stays centred on rho.
    arrivals = DiurnalArrivals(
        interarrival,
        amplitude=workload.burst_amplitude,
        period=workload.burst_period,
    )
    jobs: List[TraceJob] = []
    walltime_overestimate = 2.0
    for index, submit in enumerate(
        arrivals.times(rng, workload.horizon)
    ):
        runtime = float(runtimes.sample(rng))
        jobs.append(
            TraceJob(
                job_id=index + 1,
                submit_time=submit,
                runtime=runtime,
                nodes=int(sizes.sample(rng)),
                requested_walltime=runtime * walltime_overestimate,
                user=f"user{int(rng.integers(0, 8))}",
            )
        )
    return jobs


def install_background(env: Environment, workload: WorkloadSpec) -> List:
    """Submit the scenario's background workload; returns the jobs."""
    trace = background_trace(env, workload)
    if not trace:
        return []
    return submit_trace(env, trace)


# -- end-to-end scenario run -------------------------------------------------

#: Fallback horizon for scenarios that specify no workload horizon.
DEFAULT_HORIZON = 3600.0


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Dict[str, Any]:
    """Build, load and drive one scenario; return facility metrics.

    The kernel runs for ``horizon`` simulated seconds (default: the
    workload's horizon, else :data:`DEFAULT_HORIZON` — scenarios with
    stochastic fault churn never quiesce, so an explicit stop time is
    required).  The returned mapping is flat, canonically ordered and
    JSON-representable, so sweep results over scenarios serialise
    byte-identically serial vs parallel.
    """
    env = build(spec, seed=seed)
    jobs = install_background(env, spec.workload)
    until = horizon
    if until is None:
        until = spec.workload.horizon or DEFAULT_HORIZON
    env.kernel.run(until=until)
    completed = sum(
        1 for job in jobs if job.state == JobState.COMPLETED
    )
    metrics: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": spec.seed if seed is None else seed,
        "horizon_s": until,
        "background_jobs": len(jobs),
        "background_completed": completed,
        "queue_depth": env.scheduler.queue_depth,
        "finished_jobs": len(env.scheduler.finished_jobs),
    }
    for name in sorted(env.cluster.partitions):
        metrics[f"utilisation_{name}"] = env.cluster.node_utilisation(name)
    for index, qpu in enumerate(env.qpus):
        metrics[f"qpu{index}_utilisation"] = qpu.utilisation
        metrics[f"qpu{index}_maintenance"] = qpu.maintenance_performed
    failures = sum(i.failure_count for i in env.fault_injectors)
    repairs = sum(i.repair_count for i in env.fault_injectors)
    metrics["random_failures"] = failures
    metrics["random_repairs"] = repairs
    metrics["node_states"] = _node_state_counts(env)
    return metrics


def _node_state_counts(env: Environment) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for partition in env.cluster.partitions.values():
        for node in partition.nodes:
            counts[node.state.value] = counts.get(node.state.value, 0) + 1
    return dict(sorted(counts.items()))
