"""Scenario sweeps: grid axes that target scenario fields by dotted path.

The PR-2 sweep engine executes declarative parameter grids; this module
teaches it to *perturb scenarios*.  A sweep point's params carry a
``preset`` name (or an inline ``scenario`` dict) plus any number of
dotted-path overrides (``"topology.classical_nodes": 64``), and the
module-level :func:`run_scenario_point` runner — picklable, so pool
workers can import it — materialises the perturbed scenario, drives it
and returns the flat metrics dict.  Results are byte-identical serial
vs parallel because the scenario is a pure function of (params, seed).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from repro.experiments.resilience import ChaosSpec, FailurePolicy, RunJournal
from repro.experiments.sweep import (
    SweepCache,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, with_overrides

#: Reserved (non-dotted-path) parameter keys for scenario sweeps.
PRESET_KEY = "preset"
SCENARIO_KEY = "scenario"
HORIZON_KEY = "run_horizon"


def point_scenario(params: Mapping[str, Any]) -> ScenarioSpec:
    """The :class:`ScenarioSpec` one sweep point describes.

    ``params[PRESET_KEY]`` names a registered preset (or
    ``params[SCENARIO_KEY]`` holds an inline scenario dict); every other
    key except :data:`HORIZON_KEY` is a dotted-path override applied on
    top of it.

    >>> spec = point_scenario(
    ...     {"preset": "baseline-32", "topology.classical_nodes": 64}
    ... )
    >>> (spec.name, spec.topology.classical_nodes)
    ('baseline-32', 64)
    """
    remaining = dict(params)
    remaining.pop(HORIZON_KEY, None)
    preset = remaining.pop(PRESET_KEY, None)
    inline = remaining.pop(SCENARIO_KEY, None)
    if preset is not None:
        spec = get_scenario(preset)
    elif inline is not None:
        spec = ScenarioSpec.from_dict(inline)
    else:
        spec = ScenarioSpec()
    return with_overrides(spec, remaining)


def run_scenario_point(
    params: Dict[str, Any], seed: int
) -> Dict[str, Any]:
    """Sweep-engine point runner: perturb, build, drive, measure."""
    spec = point_scenario(params)
    return run_scenario(
        spec, seed=seed, horizon=params.get(HORIZON_KEY)
    )


def scenario_sweep_spec(
    preset: str,
    axes: Mapping[str, Sequence[Any]],
    experiment_id: Optional[str] = None,
    base_seed: int = 0,
    replications: int = 1,
    run_horizon: Optional[float] = None,
) -> SweepSpec:
    """A :class:`SweepSpec` whose axes are scenario dotted paths.

    Run the result with :func:`run_scenario_point`; trace-backed and
    fleet-backed presets sweep the same way
    (``"workload.trace.time_scale"``, ``"fleet.routing"``, or a
    numeric segment into one device group:
    ``"fleet.devices.0.count"``).

    >>> spec = scenario_sweep_spec(
    ...     "baseline-32", {"topology.classical_nodes": [16, 32, 64]}
    ... )
    >>> len(spec)
    3
    >>> spec.points()[0].params["preset"]
    'baseline-32'
    >>> routing = scenario_sweep_spec(
    ...     "mixed-fleet",
    ...     {"fleet.routing": ["capability", "fastest_completion"]},
    ... )
    >>> [p.params["fleet.routing"] for p in routing.points()]
    ['capability', 'fastest_completion']
    """
    constants: Dict[str, Any] = {PRESET_KEY: preset}
    if run_horizon is not None:
        constants[HORIZON_KEY] = run_horizon
    return SweepSpec(
        experiment_id=experiment_id or f"scenario:{preset}",
        axes=dict(axes),
        constants=constants,
        base_seed=base_seed,
        replications=replications,
    )


def run_scenario_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    journal: Union[RunJournal, os.PathLike, str, None] = None,
    resume: bool = True,
    on_result: Optional[Callable[..., None]] = None,
) -> SweepResult:
    """Execute a scenario grid with full per-point outcome reporting.

    The fault-tolerance layer rides along: give the sweep a
    :class:`~repro.experiments.resilience.FailurePolicy` and a raising
    or crashing scenario point degrades into a structured
    :class:`~repro.experiments.resilience.PointOutcome` in
    ``result.outcomes`` instead of aborting the campaign; a ``journal``
    (typically the cache directory) makes the campaign resumable after
    a hard kill.

    >>> sweep = scenario_sweep_spec(
    ...     "baseline-32", {"topology.classical_nodes": [16, 32]},
    ...     run_horizon=600.0)
    >>> result = run_scenario_sweep(sweep, workers=1)
    >>> [outcome.status for outcome in result.outcomes]
    ['ok', 'ok']
    >>> result.ok_count
    2
    """
    return run_sweep(
        spec,
        run_scenario_point,
        workers=workers,
        cache=cache,
        on_result=on_result,
        policy=policy,
        chaos=chaos,
        journal=journal,
        resume=resume,
    )
