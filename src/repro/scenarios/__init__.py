"""Declarative facility scenarios: specs, presets, build pipeline, sweeps.

The one-stop surface::

    from repro.scenarios import build, get_scenario, with_overrides

    env = build(get_scenario("baseline-32"), seed=7)

See :mod:`repro.scenarios.spec` for the dataclass tree,
:mod:`repro.scenarios.registry` for the named presets,
:mod:`repro.scenarios.build` for environment materialisation and fault
installation, and :mod:`repro.scenarios.sweeps` for dotted-path sweep
integration.
"""

from repro.scenarios.build import (
    DEFAULT_HORIZON,
    background_trace,
    build,
    build_fleet_devices,
    compile_trace,
    fleet_device_rows,
    install_background,
    install_faults,
    install_trace,
    load_trace_jobs,
    offered_load_interarrival,
    resolve_trace_path,
    run_scenario,
    trace_component_mapper,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.spec import (
    ARRIVAL_PROCESSES,
    FAULT_ACTIONS,
    OVERSIZE_RULES,
    DeviceSpec,
    FaultSchedule,
    FleetSpec,
    MonitoringSpec,
    NodeFault,
    PolicySpec,
    QPUMaintenance,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    TraceJobSpec,
    TraceSpec,
    WorkloadSpec,
    with_overrides,
)
from repro.scenarios.sweeps import (
    point_scenario,
    run_scenario_point,
    run_scenario_sweep,
    scenario_sweep_spec,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "DEFAULT_HORIZON",
    "FAULT_ACTIONS",
    "OVERSIZE_RULES",
    "DeviceSpec",
    "FaultSchedule",
    "FleetSpec",
    "MonitoringSpec",
    "NodeFault",
    "PolicySpec",
    "QPUMaintenance",
    "RandomFailures",
    "ScenarioSpec",
    "TopologySpec",
    "TraceJobSpec",
    "TraceSpec",
    "WorkloadSpec",
    "background_trace",
    "build",
    "build_fleet_devices",
    "compile_trace",
    "fleet_device_rows",
    "get_scenario",
    "install_background",
    "install_faults",
    "install_trace",
    "list_scenarios",
    "load_trace_jobs",
    "offered_load_interarrival",
    "point_scenario",
    "register_scenario",
    "resolve_trace_path",
    "run_scenario",
    "run_scenario_point",
    "run_scenario_sweep",
    "scenario_sweep_spec",
    "trace_component_mapper",
    "with_overrides",
]
