"""Declarative facility scenarios.

The paper's claims are comparisons of integration strategies *under a
particular facility scenario*: a topology, a QPU fleet, a workload mix,
a scheduling policy — and, for dependability studies, a schedule of
faults.  This module makes that scenario a first-class value: a
:class:`ScenarioSpec` is a frozen dataclass tree that

- round-trips losslessly through ``to_dict``/``from_dict`` and JSON,
  so scenarios can live in files, cache keys and sweep parameters;
- validates eagerly (:meth:`ScenarioSpec.validate`), so a bad scenario
  fails before any simulation starts;
- supports *dotted-path overrides* (:func:`with_overrides`), which is
  how sweep axes target individual scenario fields
  (``"topology.classical_nodes"``) without bespoke glue per experiment.

Building a live :class:`~repro.strategies.base.Environment` from a spec
is :func:`repro.scenarios.build.build`'s job; named presets live in
:mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Known fault actions, in the order the node lifecycle supports them.
FAULT_ACTIONS = ("fail", "repair", "drain", "undrain")

#: Known background arrival processes.
ARRIVAL_PROCESSES = ("poisson", "diurnal")

#: How a trace job larger than the target partition is handled.
OVERSIZE_RULES = ("clamp", "drop", "error")


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape: the classical partition plus QPU front-end packing."""

    classical_nodes: int = 32
    cores_per_node: int = 64
    qpus_per_node: int = 1
    classical_max_walltime: Optional[float] = None
    quantum_max_walltime: Optional[float] = None

    def validate(self) -> None:
        if self.classical_nodes < 0:
            raise ConfigurationError("topology.classical_nodes must be >= 0")
        if self.cores_per_node <= 0:
            raise ConfigurationError("topology.cores_per_node must be > 0")
        if self.qpus_per_node <= 0:
            raise ConfigurationError("topology.qpus_per_node must be > 0")
        for label, walltime in (
            ("classical", self.classical_max_walltime),
            ("quantum", self.quantum_max_walltime),
        ):
            if walltime is not None and walltime <= 0:
                raise ConfigurationError(
                    f"topology.{label}_max_walltime must be > 0 when set"
                )


@dataclass(frozen=True)
class DeviceSpec:
    """One homogeneous device group of a heterogeneous fleet.

    ``count`` physical devices of one ``technology``, each optionally
    split into ``vqpus_per_qpu`` virtual QPU gres units.  Devices are
    named ``{prefix}-{index}`` where ``prefix`` defaults to the
    technology name and indices count per prefix across the whole
    fleet (so two groups sharing a prefix keep unique names).

    >>> DeviceSpec(technology="trapped_ion", count=2).validate()
    >>> DeviceSpec(technology="warpdrive").validate()
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: device technology 'warpdrive' \
unknown; known: ['annealer', 'neutral_atom', 'photonic', \
'superconducting', 'trapped_ion']
    """

    technology: str
    count: int = 1
    vqpus_per_qpu: int = 1
    name: Optional[str] = None

    def validate(self) -> None:
        from repro.quantum.technology import TECHNOLOGIES

        if self.technology not in TECHNOLOGIES:
            raise ConfigurationError(
                f"device technology {self.technology!r} unknown; "
                f"known: {sorted(TECHNOLOGIES)}"
            )
        if self.count < 1:
            raise ConfigurationError("device count must be >= 1")
        if self.vqpus_per_qpu < 1:
            raise ConfigurationError("device vqpus_per_qpu must be >= 1")
        if self.name is not None and not self.name:
            raise ConfigurationError(
                "device name prefix must be non-empty when set"
            )


@dataclass(frozen=True)
class FleetSpec:
    """The QPU fleet: devices, routing policy and virtualisation.

    Two authoring forms:

    - the *flat shorthand* (``technology`` × ``qpu_count`` ×
      ``vqpus_per_qpu``) describes a homogeneous fleet and
      canonicalises to a single :class:`DeviceSpec`;
    - ``devices`` lists heterogeneous device groups explicitly and is
      mutually exclusive with non-default flat fields (a contradictory
      combination is rejected rather than silently preferring one).

    ``routing`` picks the :class:`repro.quantum.fleet.QPUFleet` policy
    kernels are dispatched under when work goes through the fleet
    router (one of :data:`repro.quantum.fleet.ROUTING_POLICIES`).

    >>> FleetSpec(devices=(DeviceSpec("superconducting", count=2),
    ...                    DeviceSpec("neutral_atom")),
    ...           routing="round_robin").validate()
    >>> [d.technology for d in FleetSpec(qpu_count=3).canonical_devices()]
    ['superconducting']
    >>> FleetSpec(qpu_count=3,
    ...           devices=(DeviceSpec("photonic"),)).validate()
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: fleet.devices and the flat \
single-technology fields are mutually exclusive; fleet.qpu_count=3 \
contradicts devices=[...]
    """

    technology: str = "superconducting"
    qpu_count: int = 1
    vqpus_per_qpu: int = 1
    jitter: bool = False
    devices: Tuple[DeviceSpec, ...] = ()
    routing: str = "fastest_completion"

    def validate(self) -> None:
        from repro.quantum.fleet import ROUTING_POLICIES
        from repro.quantum.technology import TECHNOLOGIES

        if self.technology not in TECHNOLOGIES:
            raise ConfigurationError(
                f"fleet.technology {self.technology!r} unknown; "
                f"known: {sorted(TECHNOLOGIES)}"
            )
        if self.qpu_count < 1:
            raise ConfigurationError("fleet.qpu_count must be >= 1")
        if self.vqpus_per_qpu < 1:
            raise ConfigurationError("fleet.vqpus_per_qpu must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"fleet.routing {self.routing!r} unknown; "
                f"known: {ROUTING_POLICIES}"
            )
        if self.devices:
            contradictions = [
                f"fleet.{field_name}={getattr(self, field_name)!r}"
                for field_name, default in _FLAT_FLEET_DEFAULTS.items()
                if getattr(self, field_name) != default
            ]
            if contradictions:
                raise ConfigurationError(
                    "fleet.devices and the flat single-technology "
                    "fields are mutually exclusive; "
                    f"{', '.join(contradictions)} contradicts "
                    "devices=[...]"
                )
            for device in self.devices:
                device.validate()

    def canonical_devices(self) -> Tuple[DeviceSpec, ...]:
        """The fleet as explicit device groups.

        The flat shorthand canonicalises to one :class:`DeviceSpec`,
        so every consumer (the build pipeline, the CLI device table)
        sees a single representation.

        >>> FleetSpec(technology="neutral_atom", qpu_count=2,
        ...           vqpus_per_qpu=4).canonical_devices()
        (DeviceSpec(technology='neutral_atom', count=2, \
vqpus_per_qpu=4, name=None),)
        """
        if self.devices:
            return self.devices
        return (
            DeviceSpec(
                technology=self.technology,
                count=self.qpu_count,
                vqpus_per_qpu=self.vqpus_per_qpu,
            ),
        )

    def device_count(self) -> int:
        """Total physical devices across all groups.

        >>> FleetSpec(devices=(DeviceSpec("superconducting", count=2),
        ...                    DeviceSpec("trapped_ion"))).device_count()
        3
        """
        return sum(d.count for d in self.canonical_devices())

    def is_heterogeneous(self) -> bool:
        """Whether the fleet mixes more than one technology."""
        return len(
            {d.technology for d in self.canonical_devices()}
        ) > 1


#: The flat single-technology fields whose non-default values
#: contradict an explicit ``devices`` list, with their defaults read
#: straight off the dataclass so the check can never desync.
_FLAT_FLEET_DEFAULTS = {
    f.name: f.default
    for f in dataclasses.fields(FleetSpec)
    if f.name in ("technology", "qpu_count", "vqpus_per_qpu")
}


@dataclass(frozen=True)
class TraceJobSpec:
    """One inline trace job of a :class:`TraceSpec`.

    Mirrors :class:`repro.workloads.swf.TraceJob` field for field, so
    small traces can live entirely inside a scenario JSON file (no
    side-car SWF file to ship).

    >>> TraceJobSpec(job_id=1, submit_time=0.0, runtime=60.0,
    ...              nodes=4, requested_walltime=120.0).nodes
    4
    """

    job_id: int
    submit_time: float
    runtime: float
    nodes: int
    requested_walltime: float
    user: str = "user0"

    def validate(self) -> None:
        if self.submit_time < 0:
            raise ConfigurationError(
                f"trace job {self.job_id}: submit_time must be >= 0"
            )
        if self.runtime < 0:
            raise ConfigurationError(
                f"trace job {self.job_id}: runtime must be >= 0"
            )
        if self.nodes < 1:
            raise ConfigurationError(
                f"trace job {self.job_id}: nodes must be >= 1"
            )
        if self.requested_walltime <= 0:
            raise ConfigurationError(
                f"trace job {self.job_id}: requested_walltime must be > 0"
            )


@dataclass(frozen=True)
class TraceSpec:
    """A trace-file-backed workload source.

    Exactly one of ``path`` (an SWF file, resolved against the working
    directory and then the packaged sample directory
    ``repro/workloads/data``) or ``jobs`` (inline
    :class:`TraceJobSpec` entries) supplies the jobs.  The remaining
    fields are *replay rules* applied at build time, in order:

    1. ``limit`` truncates to the first N trace jobs;
    2. ``time_scale`` multiplies submit times (0.5 compresses the
       trace to double the arrival rate) and ``runtime_scale``
       multiplies runtimes and requested walltimes;
    3. the trace is cut at the run horizon, or — with ``loop=True`` —
       repeated (with fresh job ids) until the horizon is filled;
    4. ``jitter`` adds zero-mean Gaussian noise (std-dev in seconds)
       to submit times from the scenario's own ``trace-jitter``
       stream, so replications decorrelate deterministically.

    Mapping rules: jobs land on ``partition``; jobs wider than
    ``max_nodes`` (default: the partition size) are clamped, dropped
    or rejected per ``oversize``; ``qpu_fraction`` routes a
    deterministic, seed-independent subset of jobs to the quantum
    partition as single-node ``qpu`` gres requests — turning a purely
    classical archive trace into a hybrid HPC-QC workload.

    >>> TraceSpec(path="sample-32n.swf", time_scale=0.5).validate()
    >>> TraceSpec().validate()
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: workload.trace needs exactly one \
of path= or jobs=
    """

    path: Optional[str] = None
    jobs: Tuple[TraceJobSpec, ...] = ()
    time_scale: float = 1.0
    runtime_scale: float = 1.0
    partition: str = "classical"
    max_nodes: Optional[int] = None
    oversize: str = "clamp"
    qpu_fraction: float = 0.0
    limit: Optional[int] = None
    loop: bool = False
    jitter: float = 0.0

    def validate(self) -> None:
        if (self.path is None) == (not self.jobs):
            raise ConfigurationError(
                "workload.trace needs exactly one of path= or jobs="
            )
        for job in self.jobs:
            job.validate()
        if self.time_scale <= 0:
            raise ConfigurationError("workload.trace.time_scale must be > 0")
        if self.runtime_scale <= 0:
            raise ConfigurationError(
                "workload.trace.runtime_scale must be > 0"
            )
        if not self.partition:
            raise ConfigurationError(
                "workload.trace.partition needs a partition name"
            )
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ConfigurationError(
                "workload.trace.max_nodes must be >= 1 when set"
            )
        if self.oversize not in OVERSIZE_RULES:
            raise ConfigurationError(
                f"workload.trace.oversize {self.oversize!r} unknown; "
                f"known: {OVERSIZE_RULES}"
            )
        if not 0.0 <= self.qpu_fraction <= 1.0:
            raise ConfigurationError(
                "workload.trace.qpu_fraction must be in [0, 1]"
            )
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(
                "workload.trace.limit must be >= 1 when set"
            )
        if self.jitter < 0:
            raise ConfigurationError("workload.trace.jitter must be >= 0")


@dataclass(frozen=True)
class WorkloadSpec:
    """Classical load offered to the facility.

    Two sources compose: a *synthetic background* (``background_rho``
    is offered load in node-seconds demanded per node-second of
    classical capacity; zero disables it; ``arrivals="diurnal"``
    modulates the submission rate with a day/night cycle) and an
    optional *trace replay* (``trace``) driven by an SWF archive file
    or inline jobs — see :class:`TraceSpec`.
    """

    background_rho: float = 0.0
    horizon: float = 0.0
    min_runtime: float = 300.0
    max_runtime: float = 1800.0
    min_nodes: int = 2
    max_nodes: int = 16
    arrivals: str = "poisson"
    burst_amplitude: float = 0.5
    burst_period: float = 4 * 3600.0
    trace: Optional[TraceSpec] = None

    def validate(self) -> None:
        if self.background_rho < 0:
            raise ConfigurationError("workload.background_rho must be >= 0")
        if self.horizon < 0:
            raise ConfigurationError("workload.horizon must be >= 0")
        if self.background_rho > 0 and self.horizon <= 0:
            raise ConfigurationError(
                "workload.horizon must be > 0 when background_rho > 0"
            )
        if not 0 < self.min_runtime <= self.max_runtime:
            raise ConfigurationError(
                "workload runtimes must satisfy 0 < min_runtime <= max_runtime"
            )
        if not 0 < self.min_nodes <= self.max_nodes:
            raise ConfigurationError(
                "workload sizes must satisfy 0 < min_nodes <= max_nodes"
            )
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"workload.arrivals {self.arrivals!r} unknown; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        if not 0.0 <= self.burst_amplitude < 1.0:
            raise ConfigurationError(
                "workload.burst_amplitude must be in [0, 1)"
            )
        if self.burst_period <= 0:
            raise ConfigurationError("workload.burst_period must be > 0")
        # Looping needs no horizon check here: the trace loops to the
        # *run* horizon, which always resolves to a positive value
        # (workload.horizon, an explicit horizon= argument, or the
        # build pipeline's default).
        if self.trace is not None:
            self.trace.validate()


@dataclass(frozen=True)
class PolicySpec:
    """Scheduling policy, cycle and multifactor priority weights."""

    policy: str = "easy"
    scheduling_cycle: float = 0.0
    priority_age: float = 1000.0
    priority_size: float = 0.0
    priority_fairshare: float = 0.0
    priority_qos: float = 1.0

    def validate(self) -> None:
        from repro.scheduler.backfill import POLICIES

        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy.policy {self.policy!r} unknown; "
                f"known: {sorted(POLICIES)}"
            )
        if self.scheduling_cycle < 0:
            raise ConfigurationError("policy.scheduling_cycle must be >= 0")
        weights = (
            self.priority_age,
            self.priority_size,
            self.priority_fairshare,
            self.priority_qos,
        )
        if min(weights) < 0:
            raise ConfigurationError("policy priority weights must be >= 0")


@dataclass(frozen=True)
class MonitoringSpec:
    """What the facility records beyond the always-on counters."""

    #: Keep full step histories on the cluster's time-weighted busy
    #: counters (off by default: histories grow unboundedly).
    record_history: bool = False

    def validate(self) -> None:  # nothing further to check, by design
        return None


@dataclass(frozen=True)
class NodeFault:
    """One timed node lifecycle event.

    ``node`` is the node's name (``cn0003``, ``qn00``).  ``fail`` takes
    the node down (evicting and requeueing its job), ``repair`` brings
    it back, ``drain`` stops new work (an allocated node finishes its
    job first, then parks in ``DRAINING``), ``undrain`` returns a
    drained node to service.
    """

    time: float
    action: str
    node: str

    def validate(self) -> None:
        if self.time < 0:
            raise ConfigurationError("fault event time must be >= 0")
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"fault action {self.action!r} unknown; known: {FAULT_ACTIONS}"
            )
        if not self.node:
            raise ConfigurationError("fault event needs a node name")


@dataclass(frozen=True)
class QPUMaintenance:
    """A booked maintenance window on one QPU (by device name)."""

    qpu: str
    start: float
    duration: float

    def validate(self) -> None:
        if not self.qpu:
            raise ConfigurationError("maintenance window needs a QPU name")
        if self.start < 0:
            raise ConfigurationError("maintenance start must be >= 0")
        if self.duration <= 0:
            raise ConfigurationError("maintenance duration must be > 0")


@dataclass(frozen=True)
class RandomFailures:
    """Stochastic exponential fail/repair churn on one partition."""

    mtbf: float
    mean_repair_time: float
    partition: str = "classical"

    def validate(self) -> None:
        if self.mtbf <= 0 or self.mean_repair_time <= 0:
            raise ConfigurationError(
                "random failures need positive mtbf and mean_repair_time"
            )
        if not self.partition:
            raise ConfigurationError("random failures need a partition name")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong, declaratively.

    Deterministic timed events (``events``), booked QPU maintenance
    windows (``maintenance``) and an optional stochastic background of
    exponential failures (``random_failures``).  An empty schedule is
    the default and installs nothing.
    """

    events: Tuple[NodeFault, ...] = ()
    maintenance: Tuple[QPUMaintenance, ...] = ()
    random_failures: Optional[RandomFailures] = None

    def validate(self) -> None:
        for event in self.events:
            event.validate()
        for window in self.maintenance:
            window.validate()
        if self.random_failures is not None:
            self.random_failures.validate()

    def is_empty(self) -> bool:
        return (
            not self.events
            and not self.maintenance
            and self.random_failures is None
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete facility scenario, as data.

    One spec fixes everything :func:`repro.scenarios.build.build` needs
    to produce a live environment: topology, fleet, workload, policy,
    monitoring and fault schedule, plus the root seed.  Experiments,
    sweeps, presets and the CLI all speak this type.

    Specs are values: they compare by content and round-trip
    losslessly through plain dicts and JSON.

    >>> spec = ScenarioSpec(topology=TopologySpec(classical_nodes=64))
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
    True
    >>> ScenarioSpec.from_json(spec.to_json()) == spec
    True
    """

    name: str = "custom"
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    monitoring: MonitoringSpec = field(default_factory=MonitoringSpec)
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    seed: int = 0

    def validate(self) -> "ScenarioSpec":
        """Check every section; returns self so calls chain."""
        if not self.name:
            raise ConfigurationError("a scenario needs a name")
        self.topology.validate()
        self.fleet.validate()
        self.workload.validate()
        self.policy.validate()
        self.monitoring.validate()
        self.faults.validate()
        if (
            self.workload.background_rho > 0
            and self.workload.max_nodes > self.topology.classical_nodes
        ):
            raise ConfigurationError(
                f"workload.max_nodes ({self.workload.max_nodes}) exceeds "
                f"topology.classical_nodes "
                f"({self.topology.classical_nodes}): background jobs "
                "would be unschedulable"
            )
        return self

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain nested dict (JSON-ready; tuples become lists)."""
        return _to_plain(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        return _spec_from_dict(cls, data, path="scenario")

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(data)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return dataclasses.replace(self, seed=int(seed))


# -- dict plumbing -----------------------------------------------------------

#: Fields holding nested spec dataclasses (or tuples/optionals of them),
#: keyed by (owner class, field name).
_NESTED: Dict[Tuple[type, str], Any] = {
    (ScenarioSpec, "topology"): TopologySpec,
    (ScenarioSpec, "fleet"): FleetSpec,
    (ScenarioSpec, "workload"): WorkloadSpec,
    (ScenarioSpec, "policy"): PolicySpec,
    (ScenarioSpec, "monitoring"): MonitoringSpec,
    (ScenarioSpec, "faults"): FaultSchedule,
    (FleetSpec, "devices"): ("tuple", DeviceSpec),
    (FaultSchedule, "events"): ("tuple", NodeFault),
    (FaultSchedule, "maintenance"): ("tuple", QPUMaintenance),
    (FaultSchedule, "random_failures"): ("optional", RandomFailures),
    (WorkloadSpec, "trace"): ("optional", TraceSpec),
    (TraceSpec, "jobs"): ("tuple", TraceJobSpec),
}


def _to_plain(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _to_plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_plain(item) for item in value]
    return value


def _spec_from_dict(cls: type, data: Mapping[str, Any], path: str) -> Any:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{path} must be a mapping, got {data!r}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(fields)
    if unknown:
        raise ConfigurationError(
            f"{path} has unknown keys {sorted(unknown)}; "
            f"known: {sorted(fields)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        nested = _NESTED.get((cls, name))
        child_path = f"{path}.{name}"
        if nested is None:
            kwargs[name] = value
        elif isinstance(nested, tuple) and nested[0] == "tuple":
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(f"{child_path} must be a list")
            kwargs[name] = tuple(
                _spec_from_dict(nested[1], item, f"{child_path}[{i}]")
                for i, item in enumerate(value)
            )
        elif isinstance(nested, tuple) and nested[0] == "optional":
            kwargs[name] = (
                None
                if value is None
                else _spec_from_dict(nested[1], value, child_path)
            )
        else:
            kwargs[name] = _spec_from_dict(nested, value, child_path)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad {path}: {exc}") from exc


# -- dotted-path overrides ---------------------------------------------------


def with_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, Any]
) -> ScenarioSpec:
    """A copy of ``spec`` with dotted-path fields replaced.

    The mechanism sweep axes use to target scenario fields.  Paths must
    name existing fields; structured fields (``faults.events``,
    ``workload.trace``) take plain dict/list values as produced by
    :meth:`ScenarioSpec.to_dict`.  Numeric path segments index into
    list-valued fields, so a sweep axis can target one device group of
    a heterogeneous fleet (``"fleet.devices.0.count"``).  The input
    spec is never mutated and the result is validated before it is
    returned.

    >>> spec = with_overrides(
    ...     ScenarioSpec(),
    ...     {"topology.classical_nodes": 64, "fleet.vqpus_per_qpu": 4},
    ... )
    >>> (spec.topology.classical_nodes, spec.fleet.vqpus_per_qpu)
    (64, 4)
    >>> mixed = ScenarioSpec(fleet=FleetSpec(
    ...     devices=(DeviceSpec("superconducting"),
    ...              DeviceSpec("trapped_ion"))))
    >>> with_overrides(
    ...     mixed, {"fleet.devices.0.count": 3}
    ... ).fleet.devices[0].count
    3
    >>> with_overrides(mixed, {"fleet.devices.7.count": 3})
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown scenario field \
'fleet.devices.7' in override 'fleet.devices.7.count' \
(index out of range)
    >>> with_overrides(ScenarioSpec(), {"topology.warp": 9})
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: unknown scenario field \
'topology.warp' (no such key 'warp')
    """
    if not overrides:
        return spec
    data = spec.to_dict()
    for path, value in overrides.items():
        parts = path.split(".")
        cursor: Any = data
        for index, part in enumerate(parts[:-1]):
            bad = ".".join(parts[: index + 1])
            if isinstance(cursor, list):
                if not part.isdigit():
                    raise ConfigurationError(
                        f"unknown scenario field {bad!r} in override "
                        f"{path!r} (expected a list index, got "
                        f"{part!r})"
                    )
                if int(part) >= len(cursor):
                    raise ConfigurationError(
                        f"unknown scenario field {bad!r} in override "
                        f"{path!r} (index out of range)"
                    )
                cursor = cursor[int(part)]
                continue
            if not isinstance(cursor, dict) or part not in cursor:
                raise ConfigurationError(
                    f"unknown scenario field {bad!r} in override {path!r}"
                )
            cursor = cursor[part]
        leaf = parts[-1]
        if isinstance(cursor, list):
            if not leaf.isdigit():
                raise ConfigurationError(
                    f"unknown scenario field {path!r} "
                    f"(expected a list index, got {leaf!r})"
                )
            if int(leaf) >= len(cursor):
                raise ConfigurationError(
                    f"unknown scenario field {path!r} "
                    "(index out of range)"
                )
            cursor[int(leaf)] = value
        elif not isinstance(cursor, dict) or leaf not in cursor:
            raise ConfigurationError(
                f"unknown scenario field {path!r} "
                f"(no such key {leaf!r})"
            )
        else:
            cursor[leaf] = value
    return ScenarioSpec.from_dict(data).validate()
