#!/usr/bin/env python3
"""Fail CI when a kernel benchmark regresses past its budget.

Compares a freshly generated ``BENCH_<rev>.json`` (see
``benchmarks/conftest.py``) against the checked-in baseline — the
``BENCH_*.json`` most recently touched in git history — and exits
non-zero if any matching benchmark's wall time exceeds

    budget = baseline * factor + slack

The multiplicative factor (default 2x) catches genuine hot-path
regressions; the additive slack (default 0.25 s) keeps sub-100ms
benchmarks from flaking on shared CI runners where absolute noise
dwarfs such walls.  Benchmarks without a baseline entry (new tiers)
are reported but never fail the check.

Usage::

    python -m pytest benchmarks/test_bench_kernel.py -q
    python scripts/check_bench_budget.py --current BENCH_$(git rev-parse --short HEAD).json
    python scripts/check_bench_budget.py --current BENCH_ci.json --baseline BENCH_96d3917.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Only benchmarks whose test name contains this substring are budgeted
#: by default: artefact benchmarks regenerate whole experiments and get
#: their regression protection from the experiment claim checks.
DEFAULT_FILTER = "test_bench_kernel"


def _tracked_bench_files() -> list:
    """BENCH_*.json files tracked in git, newest-commit first."""
    try:
        names = subprocess.run(
            ["git", "ls-files", "BENCH_*.json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
    except (OSError, subprocess.CalledProcessError):
        return []

    def commit_time(name: str) -> int:
        try:
            out = subprocess.run(
                ["git", "log", "-1", "--format=%ct", "--", name],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            return int(out or 0)
        except (OSError, subprocess.CalledProcessError, ValueError):
            return 0

    return sorted(names, key=commit_time, reverse=True)


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    except ValueError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark budget check (see module docstring)"
    )
    parser.add_argument(
        "--current",
        required=True,
        help="freshly generated BENCH_<rev>.json to check",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline BENCH_<rev>.json (default: the checked-in "
            "BENCH file most recently touched in git history, "
            "excluding --current)"
        ),
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="multiplicative budget on the baseline wall time (default 2.0)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.25,
        help="additive seconds of CI-noise allowance (default 0.25)",
    )
    parser.add_argument(
        "--filter",
        default=DEFAULT_FILTER,
        help=(
            "substring a test name must contain to be budgeted "
            f"(default {DEFAULT_FILTER!r})"
        ),
    )
    args = parser.parse_args(argv)

    current_path = Path(args.current)
    if not current_path.is_absolute():
        current_path = REPO_ROOT / current_path
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = REPO_ROOT / baseline_path
    else:
        candidates = [
            REPO_ROOT / name
            for name in _tracked_bench_files()
            if (REPO_ROOT / name).resolve() != current_path.resolve()
        ]
        if not candidates:
            print("bench-budget: no checked-in baseline BENCH_*.json; skipping")
            return 0
        baseline_path = candidates[0]

    baseline = _load(baseline_path).get("benchmarks", {})
    current = _load(current_path).get("benchmarks", {})

    checked = 0
    failures = []
    print(
        f"bench-budget: {current_path.name} vs {baseline_path.name} "
        f"(budget = baseline * {args.factor:g} + {args.slack:g}s)"
    )
    for name in sorted(current):
        if args.filter not in name:
            continue
        wall = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  NEW   {name}: {wall:.3f}s (no baseline entry)")
            continue
        budget = base * args.factor + args.slack
        checked += 1
        status = "ok" if wall <= budget else "FAIL"
        print(
            f"  {status:5} {name}: {wall:.3f}s "
            f"(baseline {base:.3f}s, budget {budget:.3f}s)"
        )
        if wall > budget:
            failures.append(name)

    if not checked and not failures:
        print(
            f"bench-budget: no benchmarks matching {args.filter!r} had a "
            "baseline entry; nothing to check"
        )
        return 0
    if failures:
        print(
            f"bench-budget: {len(failures)} benchmark(s) over budget: "
            + ", ".join(failures)
        )
        return 1
    print(f"bench-budget: {checked} benchmark(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
