"""Scheduler hot-path scale benchmarks: ``select`` on fleet-sized queues.

One ``select`` pass over a deep pending queue on a multi-partition
cluster (1024 classical nodes + 128 GPU nodes + 8 QPU front-ends, ~510
running allocations) — the pattern every experiment funnels through.
The pre-rewrite timeline layer rebuilt the cluster profile per backfill
candidate and rescanned every breakpoint per ``fits``; these benchmarks
track the compiled-profile implementation so regressions show up in
the perf trajectory.

Reference points on this workload (recorded 2026-07, same driver):

==============  ============  ===========  ========
policy/depth    pre-rewrite   compiled     speedup
==============  ============  ===========  ========
easy @ 1k       1.140 s       0.062 s      ~18x
easy @ 5k       1.118 s       0.067 s      ~17x
conservative 1k 11.385 s      0.774 s      ~15x
==============  ============  ===========  ========

The 5k-deep tier multiplies runtime (conservative is inherently
O(queue x breakpoints)); set ``REPRO_BENCH_SCALE=1`` to include it.
"""

import os

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import GresInstance, Node
from repro.cluster.partition import Partition
from repro.scheduler.backfill import make_policy
from repro.scheduler.job import Job, JobComponent, JobSpec
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams

#: Queue depths exercised; the deep tier is opt-in (env gate) because
#: conservative backfill legitimately does O(depth) timeline work per
#: job and would dominate the default benchmark run.
DEPTHS = [1000, 5000]
DEEP_TIER_ENV = "REPRO_BENCH_SCALE"


def build_fleet_cluster(kernel: Kernel) -> Cluster:
    classical = Partition(
        "classical", [Node(f"cn{i:04d}") for i in range(1024)]
    )
    gpu_nodes = []
    for i in range(128):
        gres = [GresInstance("gpu", j) for j in range(4)]
        gpu_nodes.append(Node(f"gn{i:04d}", gres=gres))
    gpu = Partition("gpu", gpu_nodes)
    quantum = Partition(
        "quantum",
        [
            Node(f"qn{i:02d}", gres=[GresInstance("qpu", 0, device=object())])
            for i in range(8)
        ],
    )
    return Cluster(kernel, [classical, gpu, quantum])


def fill_running(cluster: Cluster, streams: RandomStreams) -> None:
    """~510 running allocations with spread expected ends: the
    breakpoint load a fleet-sized availability profile carries."""
    rng = streams.stream("fill")
    for i in range(450):
        cluster.allocate(
            f"run-{i}", "classical", int(rng.integers(1, 4)),
            walltime=float(rng.uniform(600.0, 86400.0)),
        )
    for i in range(60):
        cluster.allocate(
            f"grun-{i}", "gpu", int(rng.integers(1, 3)),
            gres_request={"gpu": int(rng.integers(1, 5))},
            walltime=float(rng.uniform(600.0, 7200.0)),
        )
    for i in range(4):
        cluster.allocate(
            f"qrun-{i}", "quantum", 1, gres_request={"qpu": 1},
            walltime=float(rng.uniform(1800.0, 7200.0)),
        )


def build_queue(kernel: Kernel, depth: int, streams: RandomStreams):
    """A 900-node blocker followed by a mixed backfill-candidate queue
    (75% small classical, 15% GPU, 10% heterogeneous classical+QPU)."""
    rng = streams.stream("queue")
    jobs = []
    blocker = JobSpec(
        name="blocker",
        components=[JobComponent("classical", 900, 7200.0)],
        duration=3600.0,
    )
    job = Job(blocker, kernel)
    job.submit_time = 0.0
    jobs.append(job)
    for i in range(depth - 1):
        kind = rng.random()
        if kind < 0.75:
            components = [
                JobComponent(
                    "classical", int(rng.integers(1, 5)),
                    float(rng.uniform(300.0, 7200.0)),
                )
            ]
        elif kind < 0.9:
            components = [
                JobComponent(
                    "gpu", int(rng.integers(1, 3)),
                    float(rng.uniform(300.0, 3600.0)),
                    gres={"gpu": int(rng.integers(1, 5))},
                )
            ]
        else:
            components = [
                JobComponent("classical", int(rng.integers(1, 5)), 1800.0),
                JobComponent("quantum", 1, 1800.0, gres={"qpu": 1}),
            ]
        spec = JobSpec(name=f"q{i}", components=components, duration=60.0)
        job = Job(spec, kernel)
        job.submit_time = 0.0
        jobs.append(job)
    return jobs


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("policy_name", ["fifo", "easy", "conservative"])
def test_bench_select_scale(run_once, policy_name, depth):
    if depth > 1000 and not os.environ.get(DEEP_TIER_ENV):
        pytest.skip(f"set {DEEP_TIER_ENV}=1 for the {depth}-deep tier")
    # Workload construction stays outside the measured region: the
    # benchmark value is one ``select`` pass, nothing else.
    kernel = Kernel()
    cluster = build_fleet_cluster(kernel)
    streams = RandomStreams(7)
    fill_running(cluster, streams)
    jobs = build_queue(kernel, depth, streams)
    policy = make_policy(policy_name)
    started = run_once(policy.select, jobs, cluster, 0.0)
    if policy_name == "fifo":
        # The 900-node blocker heads the queue: strict FIFO starts nothing.
        assert started == []
    else:
        # Both backfill flavours must fill around the blocker.
        assert len(started) > 0
        assert all(job.spec.name != "blocker" for job in started)
