"""Benchmark E4 — regenerate Fig 3 (virtual QPU interleaving sweep)."""

from repro.experiments.fig3_vqpu import run
from repro.experiments.harness import assert_all_claims


def test_bench_fig3_vqpu(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
