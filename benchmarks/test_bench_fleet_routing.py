"""A6 — heterogeneous fleet routing-policy ablation.

A burst of mixed-size kernels hits a fleet of two superconducting
devices plus one (slow) trapped-ion device.  Capability-order routing
pile-drives everything onto the first device; round-robin and
queue-length routing waste kernels on the slow machine; EFT-style
``fastest_completion`` balances the twin fast devices and must win on
makespan.
"""

from repro.metrics.report import render_series
from repro.quantum.circuit import Circuit
from repro.quantum.fleet import ROUTING_POLICIES, QPUFleet
from repro.quantum.qpu import QPU
from repro.quantum.technology import SUPERCONDUCTING, TRAPPED_ION
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams


def _workload(streams: RandomStreams):
    """60 narrow kernels with shot counts spanning a decade."""
    rng = streams.stream("fleet-workload")
    kernels = []
    for index in range(60):
        shots = int(rng.integers(500, 5000))
        kernels.append((Circuit(12, 80, name=f"k{index}"), shots))
    return kernels


def _run_policy(policy: str, seed: int = 0) -> float:
    kernel = Kernel()
    streams = RandomStreams(seed)
    fleet = QPUFleet(
        [
            QPU(kernel, SUPERCONDUCTING, name="sc0"),
            QPU(kernel, SUPERCONDUCTING, name="sc1"),
            QPU(kernel, TRAPPED_ION, name="ti0"),
        ],
        policy=policy,
    )
    events = [
        fleet.run(circuit, shots)
        for circuit, shots in _workload(streams)
    ]
    kernel.run()
    assert all(event.processed for event in events)
    return kernel.now


def _sweep(seed: int = 0):
    return {
        policy: _run_policy(policy, seed) for policy in ROUTING_POLICIES
    }


def test_bench_fleet_routing(run_once):
    makespans = run_once(_sweep, seed=0)
    print()
    print(
        render_series(
            "policy",
            ["makespan_s"],
            list(makespans),
            [[makespans[p] for p in makespans]],
            title=(
                "A6: fleet routing policies, 60 kernels, 2x SC + 1x TI"
            ),
        )
    )
    # Backlog-aware routing dominates naive first-fit: first-fit stacks
    # the whole burst on sc0 while sc1 idles.
    assert (
        makespans["fastest_completion"]
        < 0.7 * makespans["capability"]
    ), makespans
    # Service-time awareness beats both load-blind policies, which
    # waste kernels on the slow trapped-ion device.
    assert (
        makespans["fastest_completion"] <= makespans["round_robin"]
    ), makespans
    assert (
        makespans["fastest_completion"] <= makespans["least_loaded"]
    ), makespans
