"""A4 — elastic QPU attach/detach vs the paper's three strategies.

The extension strategy (single job, QPU component attached per quantum
phase) is benchmarked against VQPU, workflow and co-scheduling on a
multi-tenant trapped-ion campaign with a production 30 s scheduler
cycle.  The honest placement this asserts:

- elastic holds the QPU only while kernels run (efficiency ~ 1, like a
  workflow, unlike VQPU/co-scheduling which hold their unit for the
  whole job);
- elastic queues once (like malleability), so it beats the workflow's
  per-step queueing when steps outnumber quantum phases;
- VQPU keeps the turnaround edge because attach/detach pays a
  scheduler negotiation per quantum phase.
"""

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.metrics.report import render_table
from repro.metrics.stats import mean
from repro.quantum.technology import TRAPPED_ION
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.vqpu import VQPUStrategy
from repro.strategies.workflow import WorkflowStrategy

TENANTS = 4
CYCLE = 30.0


def _run_all(seed: int = 0):
    outcomes = {}
    for name, strategy, vqpus in (
        ("coschedule", CoScheduleStrategy(), 1),
        ("workflow", WorkflowStrategy(), 1),
        ("vqpu", VQPUStrategy(), TENANTS),
        ("elastic", ElasticQPUStrategy(), 1),
    ):
        apps = [
            standard_hybrid_app(
                TRAPPED_ION,
                iterations=3,
                classical_phase_seconds=120.0,
                classical_nodes=4,
                shots=500,
                name=f"tenant-{index}",
            )
            for index in range(TENANTS)
        ]
        records, env = run_campaign(
            strategy,
            apps,
            TRAPPED_ION,
            classical_nodes=8 * TENANTS,
            vqpus_per_qpu=vqpus,
            seed=seed,
            scheduling_cycle=CYCLE,
        )
        outcomes[name] = {
            "turnaround": mean([r.turnaround for r in records]),
            "qpu_eff": mean([r.qpu_efficiency for r in records]),
            "queue_entries": mean(
                [len(r.queue_waits) for r in records]
            ),
        }
    return outcomes


def test_bench_elastic_ablation(run_once):
    outcomes = run_once(_run_all, seed=0)
    print()
    rows = [
        [
            name,
            f"{data['turnaround']:.0f}",
            f"{data['qpu_eff']:.3f}",
            f"{data['queue_entries']:.0f}",
        ]
        for name, data in outcomes.items()
    ]
    print(
        render_table(
            ["strategy", "mean_turnaround_s", "qpu_eff", "queue entries"],
            rows,
            title=(
                f"A4: elastic attach/detach, {TENANTS} trapped-ion "
                f"tenants, {CYCLE:.0f}s cycle"
            ),
        )
    )
    # QPU held only while used.
    assert outcomes["elastic"]["qpu_eff"] > 0.9
    assert outcomes["coschedule"]["qpu_eff"] < 0.5
    # One queue entry, like malleability.
    assert outcomes["elastic"]["queue_entries"] == 1
    # Beats the workflow's repeated queueing on this workload shape...
    assert (
        outcomes["elastic"]["turnaround"]
        < outcomes["workflow"]["turnaround"]
    )
    # ...but VQPU keeps the turnaround edge (negotiation per phase).
    assert (
        outcomes["vqpu"]["turnaround"]
        <= outcomes["elastic"]["turnaround"]
    )
    # Everything beats serialised exclusive co-scheduling.
    assert (
        outcomes["elastic"]["turnaround"]
        < outcomes["coschedule"]["turnaround"]
    )
