"""Benchmark E3 — regenerate Fig 2 (workflow execution trade-offs)."""

from repro.experiments.fig2_workflow import run
from repro.experiments.harness import assert_all_claims


def test_bench_fig2_workflow(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
