"""Benchmark E7 — regenerate the access-model comparison table."""

from repro.experiments.access_model import run
from repro.experiments.harness import assert_all_claims


def test_bench_access_model(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
