"""Benchmark E6 — regenerate the Section 4 strategy crossover map."""

from repro.experiments.crossover import run
from repro.experiments.harness import assert_all_claims


def test_bench_crossover(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
