"""Microbenchmarks of the discrete-event kernel itself.

These are throughput benchmarks (events/second) rather than paper
artefacts: they justify the simulator's scalability claims and guard
against performance regressions in the hot path.
"""

from repro.sim.kernel import Kernel
from repro.sim.resources import Resource
from repro.sim.store import Store

EVENTS = 20000


def _timeout_churn():
    kernel = Kernel()

    def ticker(k, count):
        for _ in range(count):
            yield k.timeout(1.0)

    kernel.process(ticker(kernel, EVENTS))
    kernel.run()
    return kernel.now


def _resource_contention():
    kernel = Kernel()
    resource = Resource(kernel, capacity=4)

    def user(k):
        for _ in range(200):
            with resource.request() as request:
                yield request
                yield k.timeout(1.0)

    for _ in range(25):
        kernel.process(user(kernel))
    kernel.run()
    return kernel.now


def _producer_consumer():
    kernel = Kernel()
    store = Store(kernel, capacity=16)
    total = 10000

    def producer(k):
        for index in range(total):
            yield store.put(index)

    def consumer(k):
        for _ in range(total):
            yield store.get()

    kernel.process(producer(kernel))
    kernel.process(consumer(kernel))
    kernel.run()
    return store.size


def _object_churn():
    """Allocation-heavy pattern: many short-lived processes, events and
    conditions.  Sensitive to per-instance overhead (every sim-core
    class is slotted: Event/Timeout/Process/Condition/Kernel)."""
    kernel = Kernel()
    spawned = 8000

    def short_lived(k):
        done = k.event()
        done.succeed()
        yield k.all_of([done, k.timeout(0.5)])

    def spawner(k):
        for _ in range(spawned):
            yield k.process(short_lived(k))

    kernel.process(spawner(kernel))
    kernel.run()
    return kernel.now


def test_bench_kernel_object_churn(benchmark):
    result = benchmark(_object_churn)
    assert result == 8000 * 0.5


def test_bench_kernel_timeout_churn(benchmark):
    result = benchmark(_timeout_churn)
    assert result == EVENTS


def test_bench_kernel_resource_contention(benchmark):
    result = benchmark(_resource_contention)
    assert result == 25 * 200 / 4  # perfect pipelining at capacity 4


def test_bench_kernel_producer_consumer(benchmark):
    result = benchmark(_producer_consumer)
    assert result == 0
