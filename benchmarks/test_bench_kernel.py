"""Microbenchmarks of the discrete-event kernel itself.

These are throughput benchmarks (events/second) rather than paper
artefacts: they justify the simulator's scalability claims and guard
against performance regressions in the hot path.

Like the artefact benchmarks, each workload runs exactly once
(``run_once``): the recorded wall time is a single honest execution,
not a calibrated mean whose floor is pytest-benchmark's minimum
measurement window.  The million-event tier additionally publishes a
``kernel_events_per_second`` metric through ``bench_record`` so raw
kernel throughput is tracked across PRs as a first-class number.
"""

import time

from repro.sim.kernel import Kernel
from repro.sim.resources import Resource
from repro.sim.store import Store

EVENTS = 20000

#: Event count for the throughput tier: one million timeout events
#: driven through a single process.
MILLION = 1_000_000


def _timeout_churn():
    kernel = Kernel()

    def ticker(k, count):
        for _ in range(count):
            yield k.timeout(1.0)

    kernel.process(ticker(kernel, EVENTS))
    kernel.run()
    return kernel.now


def _resource_contention():
    kernel = Kernel()
    resource = Resource(kernel, capacity=4)

    def user(k):
        for _ in range(200):
            with resource.request() as request:
                yield request
                yield k.timeout(1.0)

    for _ in range(25):
        kernel.process(user(kernel))
    kernel.run()
    return kernel.now


def _producer_consumer():
    kernel = Kernel()
    store = Store(kernel, capacity=16)
    total = 10000

    def producer(k):
        for index in range(total):
            yield store.put(index)

    def consumer(k):
        for _ in range(total):
            yield store.get()

    kernel.process(producer(kernel))
    kernel.process(consumer(kernel))
    kernel.run()
    return store.size


def _object_churn():
    """Allocation-heavy pattern: many short-lived processes, events and
    conditions.  Sensitive to per-instance overhead (every sim-core
    class is slotted: Event/Timeout/Process/Condition/Kernel)."""
    kernel = Kernel()
    spawned = 8000

    def short_lived(k):
        done = k.event()
        done.succeed()
        yield k.all_of([done, k.timeout(0.5)])

    def spawner(k):
        for _ in range(spawned):
            yield k.process(short_lived(k))

    kernel.process(spawner(kernel))
    kernel.run()
    return kernel.now


def _million_events():
    """The throughput tier: 1M timeout events through one process.

    Returns ``(final_time, events_per_second)`` where the rate covers
    only the :meth:`Kernel.run` drain (timer around the event loop, not
    generator construction), making the published metric a direct
    measure of kernel event throughput.
    """
    kernel = Kernel()

    def ticker(k, count):
        for _ in range(count):
            yield k.timeout(1.0)

    kernel.process(ticker(kernel, MILLION))
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    return kernel.now, MILLION / elapsed


def test_bench_kernel_object_churn(run_once):
    result = run_once(_object_churn)
    assert result == 8000 * 0.5


def test_bench_kernel_timeout_churn(run_once):
    result = run_once(_timeout_churn)
    assert result == EVENTS


def test_bench_kernel_resource_contention(run_once):
    result = run_once(_resource_contention)
    assert result == 25 * 200 / 4  # perfect pipelining at capacity 4


def test_bench_kernel_producer_consumer(run_once):
    result = run_once(_producer_consumer)
    assert result == 0


def test_bench_kernel_million_events(run_once, bench_record):
    final_time, events_per_second = run_once(_million_events)
    assert final_time == float(MILLION)
    bench_record(kernel_events_per_second=round(events_per_second, 1))
