"""Fault-tolerance overhead benchmark: what resilience costs.

Three runs of the same 200-point grid measure the layers separately:

1. baseline — the engine with the default policy (one attempt, no
   journal), i.e. the pre-resilience fast path;
2. guarded — retry policy + durable journal + chaos raising on ~10%
   of first attempts, the realistic campaign configuration;
3. crash recovery — a 4-worker pool with chaos worker deaths, timing
   the kill/rebuild/resubmit machinery end to end.

The acceptance assertions are the determinism contract (every
completed value byte-identical to the baseline) plus completion under
chaos; the measured walls and the guarded/baseline overhead ratio are
recorded in ``BENCH_<rev>.json`` as data.
"""

from repro.experiments.resilience import ChaosSpec, FailurePolicy
from repro.experiments.sweep import (
    SweepSpec,
    canonical_bytes,
    run_sweep,
)
from repro.metrics.report import render_table

POINTS = 200


def _point(params, seed):
    """Cheap deterministic runner: the engine is what's being timed."""
    i = params["i"]
    return {"i": i, "value": (i * 2654435761 + seed) % (2**31)}


def _spec():
    return SweepSpec(
        experiment_id="bench-resilience",
        axes={"i": list(range(POINTS))},
        base_seed=7,
    )


def test_bench_resilience(run_once, bench_record, tmp_path):
    raise_every_tenth = ChaosSpec(
        plan={i: ("raise",) for i in range(0, POINTS, 10)}
    )
    die_plan = ChaosSpec(plan={40: ("die", "ok"), 140: ("die", "ok")})

    def three_way():
        baseline = run_sweep(_spec(), _point, workers=1)
        guarded = run_sweep(
            _spec(),
            _point,
            workers=1,
            policy=FailurePolicy(max_attempts=3, on_error="collect"),
            chaos=raise_every_tenth,
            journal=tmp_path / "journal",
            resume=False,
        )
        recovered = run_sweep(
            _spec(),
            _point,
            workers=4,
            policy=FailurePolicy(max_attempts=3, on_error="collect"),
            chaos=die_plan,
        )
        return baseline, guarded, recovered

    baseline, guarded, recovered = run_once(three_way)

    # Determinism contract: retries, journalling and worker-crash
    # recovery leave every completed value byte-identical.
    blob = canonical_bytes(baseline.values)
    assert canonical_bytes(guarded.values) == blob
    assert canonical_bytes(recovered.values) == blob
    assert guarded.ok_count == POINTS
    assert recovered.ok_count == POINTS
    assert sum(o.attempts for o in guarded.outcomes) == POINTS + 20

    overhead = guarded.wall_seconds / max(baseline.wall_seconds, 1e-9)
    print()
    print(
        render_table(
            ["mode", "wall_s"],
            [
                ["baseline serial", round(baseline.wall_seconds, 3)],
                [
                    "retries + journal + 10% chaos",
                    round(guarded.wall_seconds, 3),
                ],
                [
                    "4 workers, 2 worker deaths",
                    round(recovered.wall_seconds, 3),
                ],
            ],
            title=f"fault-tolerance overhead on {POINTS} points",
        )
    )
    bench_record(
        baseline_wall_s=round(baseline.wall_seconds, 6),
        guarded_wall_s=round(guarded.wall_seconds, 6),
        crash_recovery_wall_s=round(recovered.wall_seconds, 6),
        guarded_overhead_x=round(overhead, 3),
    )
