"""Benchmark E2 — regenerate the Listing 1 co-scheduling waste table."""

from repro.experiments.harness import assert_all_claims
from repro.experiments.listing1_coschedule import run


def test_bench_listing1_coschedule(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
