"""Benchmark E5 — regenerate Fig 4 (malleability scenarios)."""

from repro.experiments.fig4_malleability import run
from repro.experiments.harness import assert_all_claims


def test_bench_fig4_malleability(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
