"""Campaign-engine benchmark: orchestration overhead and E3 end to end.

Two measurements bound what the campaign layer costs on top of the
work it schedules:

1. overhead — a 24-stage layered DAG of near-free stages runs fresh
   (journal + pickle + dispatch per stage) and then again under
   ``resume`` (pure replay).  The per-stage orchestration cost and the
   replay cost are recorded; the replay must re-execute zero stages
   and reproduce the fresh digest byte for byte.
2. e3 pipeline — the packaged ``e3-workflow`` campaign regenerates the
   paper's Fig 2 signal (workflow execution keeps the QPU busy only
   while circuits run; co-scheduling holds it idle through classical
   phases) through the full DAG: sweep stage, aggregation, strategy
   comparison and report.

Both walls land in ``BENCH_<rev>.json``.
"""

from repro.campaigns import CampaignEngine, CampaignSpec, StageSpec, STEPS

LAYERS = 4
WIDTH = 6

#: Executions observed by the bench step (serial backend: in-process).
_EXECUTIONS = []


@STEPS.register("bench.node")
def _bench_node(ctx):
    _EXECUTIONS.append(ctx.stage)
    return ctx.param("x", 0) + sum(
        ctx.upstream[name] for name in sorted(ctx.upstream)
    )


def _layered_spec():
    """LAYERS x WIDTH grid; each stage depends on the previous layer."""
    stages = []
    for layer in range(LAYERS):
        for slot in range(WIDTH):
            after = (
                tuple(f"n{layer - 1}-{s}" for s in range(WIDTH))
                if layer
                else ()
            )
            stages.append(
                StageSpec(
                    name=f"n{layer}-{slot}",
                    step="bench.node",
                    params={"x": layer * WIDTH + slot},
                    after=after,
                )
            )
    return CampaignSpec(name="bench-dag", seed=1, stages=tuple(stages))


def test_bench_campaign_overhead(run_once, bench_record, tmp_path):
    spec = _layered_spec()
    stage_count = LAYERS * WIDTH

    def fresh_then_resume():
        engine = CampaignEngine(spec, tmp_path, code_version="bench")
        fresh = engine.run()
        executed = len(_EXECUTIONS)
        replay = CampaignEngine(
            spec, tmp_path, code_version="bench"
        ).run(resume=True)
        return fresh, replay, executed

    fresh, replay, executed = run_once(fresh_then_resume)

    # Every stage ran exactly once; the resume re-executed none of
    # them and reproduced the result byte for byte.
    assert fresh.ok and replay.ok
    assert executed == stage_count
    assert len(_EXECUTIONS) == stage_count
    assert sorted(replay.resumed_stages()) == sorted(
        stage.name for stage in spec.stages
    )
    assert replay.canonical_digest() == fresh.canonical_digest()

    bench_record(
        stages=stage_count,
        fresh_seconds=round(fresh.wall_seconds, 6),
        replay_seconds=round(replay.wall_seconds, 6),
        per_stage_overhead_seconds=round(
            fresh.wall_seconds / stage_count, 6
        ),
    )


def test_bench_campaign_e3_pipeline(run_once, bench_record, tmp_path):
    engine = CampaignEngine(
        "e3-workflow", tmp_path, code_version="bench"
    )
    result = run_once(engine.run)

    assert result.ok
    compare = result.values["compare"]
    # The Fig 2 signal survives the DAG: workflow execution releases
    # the QPU between circuits, co-scheduling pins it for the whole
    # campaign.
    assert (
        compare["workflow"]["qpu_efficiency"]
        > 10 * compare["coschedule"]["qpu_efficiency"]
    )
    aggregate = result.values["aggregate"]
    assert aggregate["rows"] >= 3

    bench_record(
        wall_seconds=round(result.wall_seconds, 6),
        stages=len(result.order),
        workflow_qpu_efficiency=round(
            compare["workflow"]["qpu_efficiency"], 6
        ),
        coschedule_qpu_efficiency=round(
            compare["coschedule"]["qpu_efficiency"], 6
        ),
    )
