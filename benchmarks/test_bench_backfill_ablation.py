"""A3 — backfill-policy ablation under a hybrid workload mix.

Replays the same synthetic classical trace plus a set of hybrid
co-scheduled jobs under FIFO, EASY and conservative backfill, and
compares mean queue wait and classical utilisation.  Backfill must not
lose to strict FIFO — the standard result, retested here because hybrid
hetjobs (which must atomically co-allocate two partitions) are exactly
the jobs FIFO head-blocking punishes.
"""

from repro.experiments.common import standard_hybrid_app
from repro.metrics.report import render_series
from repro.metrics.stats import mean
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.envs import make_environment
from repro.workloads.distributions import LogUniform, PowerOfTwoNodes
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.swf import synthesise_trace

POLICIES = ("fifo", "easy", "conservative")


def _run_policy(policy: str, seed: int):
    env = make_environment(
        classical_nodes=32,
        technology=SUPERCONDUCTING,
        policy=policy,
        seed=seed,
    )
    trace = synthesise_trace(
        env.streams.stream("trace"),
        job_count=60,
        mean_interarrival=115.0,
        runtimes=LogUniform(120.0, 1800.0),
        sizes=PowerOfTwoNodes(2, 8),
    )
    trace_jobs = submit_trace(env, trace)
    driver = CampaignDriver(env, CoScheduleStrategy())
    apps = [
        standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=3,
            classical_phase_seconds=120.0,
            classical_nodes=8,
            name=f"hybrid-{index}",
        )
        for index in range(4)
    ]
    driver.launch_all(apps, submit_times=[600.0 * i for i in range(4)])
    driver.collect()
    env.kernel.run()  # drain remaining trace jobs
    waits = [
        job.wait_time for job in trace_jobs if job.wait_time is not None
    ]
    return {
        "mean_wait": mean(waits),
        "utilisation": env.cluster.node_utilisation("classical"),
        "makespan": env.kernel.now,
    }


def _sweep(seed: int = 0):
    return {policy: _run_policy(policy, seed) for policy in POLICIES}


def test_bench_backfill_ablation(run_once):
    results = run_once(_sweep, seed=0)
    print()
    print(
        render_series(
            "policy",
            ["mean_wait_s", "classical_utilisation", "makespan_s"],
            list(POLICIES),
            [
                [results[p]["mean_wait"] for p in POLICIES],
                [results[p]["utilisation"] for p in POLICIES],
                [results[p]["makespan"] for p in POLICIES],
            ],
            title="A3: backfill policy ablation (trace + hybrid hetjobs)",
        )
    )
    # Backfilling never hurts the mean wait relative to strict FIFO.
    assert results["easy"]["mean_wait"] <= results["fifo"]["mean_wait"]
    assert (
        results["conservative"]["mean_wait"]
        <= results["fifo"]["mean_wait"] * 1.05
    )
    # All policies drain the full workload.
    for policy in POLICIES:
        assert results[policy]["makespan"] > 0
