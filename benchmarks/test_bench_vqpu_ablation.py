"""A1 — VQPU-count ablation: where does virtualisation saturate?

Fine sweep of the VQPU count for a fixed tenant population.  The
makespan must fall monotonically with V and saturate once V reaches the
tenant count: beyond it there is nobody left to interleave, so extra
virtual units buy nothing (the delay-bound knob, not a throughput knob).

The grid runs as a :class:`~repro.experiments.sweep.SweepSpec` through
the parallel sweep engine (``REPRO_SWEEP_WORKERS`` fans it out).
"""

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.experiments.sweep import SweepSpec, sweep_values
from repro.metrics.report import render_series
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.vqpu import VQPUStrategy

TENANTS = 6
SWEEP = (1, 2, 3, 6, 12)


def _point(params, seed):
    apps = [
        standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=3,
            classical_phase_seconds=90.0,
            classical_nodes=2,
            name=f"tenant-{index}",
        )
        for index in range(params["tenants"])
    ]
    records, env = run_campaign(
        VQPUStrategy(),
        apps,
        SUPERCONDUCTING,
        classical_nodes=4 * params["tenants"],
        vqpus_per_qpu=params["vqpus"],
        seed=seed,
    )
    ends = [r.end_time for r in records if r.end_time is not None]
    starts = [r.submit_time for r in records]
    return {
        "makespan": max(ends) - min(starts),
        "busy": env.primary_qpu().busy.time_average(),
    }


def _sweep(seed: int = 0):
    spec = SweepSpec(
        experiment_id="A1-vqpu-ablation",
        axes={"vqpus": list(SWEEP)},
        constants={"tenants": TENANTS},
        base_seed=seed,
        seed_mode="shared",
    )
    values = sweep_values(spec, _point)
    makespans = [value["makespan"] for value in values]
    busy = [value["busy"] for value in values]
    return makespans, busy


def test_bench_vqpu_ablation(run_once):
    makespans, busy = run_once(_sweep, seed=0)
    print()
    print(
        render_series(
            "VQPUs",
            ["makespan_s", "qpu_busy_fraction"],
            list(SWEEP),
            [makespans, busy],
            title=f"A1: VQPU-count ablation ({TENANTS} tenants)",
        )
    )
    # Monotone non-increasing makespan in V.
    assert all(
        later <= earlier * 1.001
        for earlier, later in zip(makespans, makespans[1:])
    ), makespans
    # Saturation: V beyond the tenant count buys (almost) nothing.
    at_tenants = makespans[SWEEP.index(TENANTS)]
    beyond = makespans[SWEEP.index(2 * TENANTS)]
    assert beyond >= at_tenants * 0.95, (at_tenants, beyond)
    # Virtualisation itself is worth a lot up to the tenant count.
    assert at_tenants < makespans[0] * 0.5
