"""A5 — scheduling-cycle-length sensitivity of the strategies.

The scheduler cycle is the hidden constant in every "per step" or
"per negotiation" overhead of the paper's strategies: workflows pay it
per *step*, elastic per *quantum phase*, VQPU and co-scheduling once.
Sweeping it makes the sensitivity explicit — and shows why per-step
queueing of second-scale kernels is hopeless on a 60 s-cycle system.

The cycle x strategy grid runs as a
:class:`~repro.experiments.sweep.SweepSpec` through the parallel sweep
engine (``REPRO_SWEEP_WORKERS`` fans it out).
"""

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.experiments.sweep import SweepSpec, run_sweep, sweep_cache
from repro.metrics.report import render_series
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.workflow import WorkflowStrategy

CYCLES = (0.0, 10.0, 30.0, 60.0)
STRATEGIES = (
    ("coschedule", CoScheduleStrategy),
    ("workflow", WorkflowStrategy),
    ("elastic", ElasticQPUStrategy),
)


def _point(params, seed):
    strategy_class = dict(STRATEGIES)[params["strategy"]]
    app = standard_hybrid_app(
        SUPERCONDUCTING,
        iterations=4,
        classical_phase_seconds=60.0,
        classical_nodes=4,
        shots=1000,
    )
    records, _ = run_campaign(
        strategy_class(),
        [app],
        SUPERCONDUCTING,
        classical_nodes=8,
        seed=seed,
        scheduling_cycle=params["cycle"],
    )
    return records[0].turnaround


def _sweep(seed: int = 0):
    spec = SweepSpec(
        experiment_id="A5-cycle-ablation",
        axes={
            "cycle": list(CYCLES),
            "strategy": [name for name, _ in STRATEGIES],
        },
        base_seed=seed,
        seed_mode="shared",
    )
    results = {name: [] for name, _ in STRATEGIES}
    run_sweep(
        spec,
        _point,
        cache=sweep_cache(None),
        on_result=lambda point, value: results[
            point.params["strategy"]
        ].append(value),
    )
    return results


def test_bench_cycle_ablation(run_once):
    results = run_once(_sweep, seed=0)
    print()
    print(
        render_series(
            "cycle_s",
            [name for name, _ in STRATEGIES],
            list(CYCLES),
            [results[name] for name, _ in STRATEGIES],
            title="A5: turnaround vs scheduler cycle (one tenant, idle)",
        )
    )
    zero = CYCLES.index(0.0)
    last = len(CYCLES) - 1
    co_penalty = results["coschedule"][last] - results["coschedule"][zero]
    wf_penalty = results["workflow"][last] - results["workflow"][zero]
    el_penalty = results["elastic"][last] - results["elastic"][zero]
    # Co-scheduling pays ~one cycle total; workflows pay per step and
    # must be hit hardest; elastic sits strictly between.
    assert co_penalty <= CYCLES[-1] + 1.0
    assert wf_penalty > el_penalty > co_penalty, (
        co_penalty,
        el_penalty,
        wf_penalty,
    )
    # Workflow's penalty scales with the step count (8 steps here):
    # at least half a cycle per step on average.
    assert wf_penalty >= 8 * CYCLES[-1] * 0.5
