"""Sweep-engine benchmark: serial vs parallel vs warm cache.

A 30-point (vqpus x tenants x phase-length) grid of real multi-tenant
campaigns runs three ways:

1. serial, cold (the pre-engine behaviour: one process, no reuse);
2. through a 4-worker process pool, cold cache (populates the cache);
3. serial again against the warm on-disk cache (no simulation at all).

The acceptance assertions: all three produce byte-identical results,
and the engine cuts wall time by >= 3x on this grid — via the process
pool where >= 4 cores exist, and via the warm cache everywhere (cache
hits replace simulation regardless of core count; on a single-core CI
box the pool can't beat the GIL-free but serialised hardware).  The
measured times and speedups are recorded in ``BENCH_<rev>.json``.
"""

import os

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.experiments.sweep import (
    SweepCache,
    SweepSpec,
    canonical_bytes,
    run_sweep,
)
from repro.metrics.report import render_table
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.vqpu import VQPUStrategy

WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

#: 5 x 2 x 3 = 30 grid points, each a full campaign simulation.
GRID = {
    "vqpus": [1, 2, 3, 4, 6],
    "tenants": [6, 10],
    "phase_s": [60.0, 120.0, 180.0],
}


def _campaign_point(params, seed):
    apps = [
        standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=6,
            classical_phase_seconds=params["phase_s"],
            classical_nodes=2,
            name=f"tenant-{index}",
        )
        for index in range(params["tenants"])
    ]
    records, env = run_campaign(
        VQPUStrategy(),
        apps,
        SUPERCONDUCTING,
        classical_nodes=4 * params["tenants"],
        vqpus_per_qpu=params["vqpus"],
        background_rho=0.9,
        background_horizon=4 * 3600.0,
        seed=seed,
        scheduling_cycle=30.0,
    )
    ends = [r.end_time for r in records if r.end_time is not None]
    return {
        "makespan": max(ends) - min(r.submit_time for r in records),
        "qpu_busy": env.primary_qpu().busy.time_average(),
    }


def _spec(seed: int = 0) -> SweepSpec:
    return SweepSpec(
        experiment_id="bench-sweep",
        axes=GRID,
        base_seed=seed,
        seed_mode="derived",
    )


def test_bench_sweep(run_once, bench_record, tmp_path):
    cache = SweepCache(tmp_path, code_version="bench")

    def three_way():
        serial = run_sweep(_spec(), _campaign_point, workers=1)
        parallel = run_sweep(
            _spec(), _campaign_point, workers=WORKERS, cache=cache
        )
        warm = run_sweep(
            _spec(), _campaign_point, workers=1, cache=cache
        )
        return serial, parallel, warm

    serial, parallel, warm = run_once(three_way)

    assert len(serial.points) == 30
    # Byte-identity across execution modes (the determinism contract).
    blob = canonical_bytes(serial.values)
    assert canonical_bytes(parallel.values) == blob
    assert canonical_bytes(warm.values) == blob
    assert parallel.cache_hits == 0
    assert warm.cache_hits == 30

    parallel_speedup = serial.wall_seconds / max(
        parallel.wall_seconds, 1e-9
    )
    warm_speedup = serial.wall_seconds / max(warm.wall_seconds, 1e-9)
    print()
    print(
        render_table(
            ["mode", "wall_s", "speedup"],
            [
                ["serial cold", round(serial.wall_seconds, 3), "1.0x"],
                [
                    f"{WORKERS} workers cold",
                    round(parallel.wall_seconds, 3),
                    f"{parallel_speedup:.1f}x",
                ],
                [
                    "warm cache",
                    round(warm.wall_seconds, 3),
                    f"{warm_speedup:.1f}x",
                ],
            ],
            title=(
                "Sweep engine: 30-point campaign grid "
                f"({_usable_cores()} usable cores)"
            ),
        )
    )
    bench_record(
        grid_points=30,
        workers=WORKERS,
        usable_cores=_usable_cores(),
        serial_cold_s=round(serial.wall_seconds, 4),
        parallel_cold_s=round(parallel.wall_seconds, 4),
        warm_cache_s=round(warm.wall_seconds, 4),
        parallel_speedup=round(parallel_speedup, 2),
        warm_cache_speedup=round(warm_speedup, 2),
        byte_identical=True,
    )

    # >= 3x wall-time reduction through the engine on this grid.  The
    # pool delivers it when the hardware can (>= 4 usable cores — the
    # affinity mask, not os.cpu_count(), which ignores cgroup/affinity
    # limits on CI runners); the warm cache must deliver it
    # unconditionally.
    assert warm_speedup >= 3.0, (serial.wall_seconds, warm.wall_seconds)
    if _usable_cores() >= 4:
        assert parallel_speedup >= 3.0, (
            serial.wall_seconds,
            parallel.wall_seconds,
        )
