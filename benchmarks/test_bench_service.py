"""Campaign service benchmark: the full loop, over the wire.

Two sweep submissions (100 points each) enter through a live HTTP
server, a supervised pool of two worker subprocesses claims them
under leases and drains them, and the results come back through
``GET /submissions/<id>/results`` — submit-to-results wall time for
the whole round trip, HTTP parsing, SQLite lease arbitration, worker
process startup and columnar finalize included.

Throughput is published to ``BENCH_<rev>.json`` as
``service_points_per_second`` via ``bench_record``; the CI
``service-smoke`` job budgets it against the checked-in baseline.
"""

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path

from repro.experiments.sweep import SweepSpec
from repro.metrics.report import render_table
from repro.service import WorkerSupervisor, make_server

#: Points per submission x submissions: enough work that worker
#: startup does not dominate, small enough for a CI smoke lane.
POINTS = 100
SUBMISSIONS = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: The sweep runner the worker subprocesses import; written next to
#: the store and put on their PYTHONPATH, like a deployed checkout.
RUNNER_MODULE = """
def runner(params, seed):
    x = params["x"]
    return {"y": x * 2.0, "n": x, "seed_mod": seed % 1000}
"""


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


def test_bench_service(run_once, bench_record, tmp_path):
    store_dir = tmp_path / "store"
    (tmp_path / "bench_svc_runner.py").write_text(
        RUNNER_MODULE, encoding="utf-8"
    )
    pythonpath = os.pathsep.join(
        part
        for part in (
            str(_REPO_ROOT / "src"),
            str(tmp_path),
            os.environ.get("PYTHONPATH"),
        )
        if part
    )
    supervisor = WorkerSupervisor(
        store_dir,
        workers=2,
        lease_seconds=30.0,
        poll_seconds=0.05,
        extra_env={"PYTHONPATH": pythonpath},
    )
    server = make_server(store_dir, code_version="bench")
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def submit_drain_fetch():
        t0 = time.perf_counter()
        ids = []
        for index in range(SUBMISSIONS):
            spec = SweepSpec(
                f"bench-service-{index}",
                axes={"x": list(range(POINTS))},
            )
            status, record = _request(port, "POST", "/submissions", {
                "name": f"bench-{index}",
                "spec": spec.to_dict(),
                "runner": "bench_svc_runner:runner",
            })
            assert status == 201, record
            ids.append(record["id"])
        supervisor.start()
        deadline = time.monotonic() + 300
        states = {}
        while time.monotonic() < deadline:
            states = {
                sid: _request(port, "GET", f"/submissions/{sid}")[1]
                for sid in ids
            }
            if all(r["state"] in ("done", "failed") for r in states.values()):
                break
            supervisor.poll()
            time.sleep(0.05)
        t1 = time.perf_counter()
        assert all(
            r["state"] == "done" for r in states.values()
        ), states
        tables = {}
        for sid in ids:
            status, table = _request(
                port, "GET", f"/submissions/{sid}/results?metrics=y"
            )
            assert status == 200, table
            tables[sid] = table
        t2 = time.perf_counter()
        return tables, t1 - t0, t2 - t1

    try:
        tables, drain_s, fetch_s = run_once(submit_drain_fetch)
    finally:
        supervisor.drain(timeout=30)
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=5)

    total = POINTS * SUBMISSIONS
    for table in tables.values():
        assert table["headers"] == ["index", "params", "y"]
        assert [row[2] for row in table["rows"]] == [
            x * 2.0 for x in range(POINTS)
        ]

    rate = total / max(drain_s, 1e-9)
    print()
    print(
        render_table(
            ["phase", "wall_s", "points/s"],
            [
                ["submit + drain", round(drain_s, 3), round(rate)],
                ["results fetch", round(fetch_s, 4), ""],
            ],
            title=(
                f"Campaign service: {SUBMISSIONS} submissions x "
                f"{POINTS} points, 2 workers"
            ),
        )
    )
    bench_record(
        points=total,
        submissions=SUBMISSIONS,
        workers=2,
        drain_s=round(drain_s, 4),
        results_fetch_s=round(fetch_s, 5),
        service_points_per_second=round(rate),
    )
