"""Result-store benchmark: 10^4-point columnar metric reads.

A 10,000-point grid is written through the store's durable point
path (one committed WAL transaction per point — the crash-safety
unit), finalized into columnar npz shards, and then one metric is
read across the whole grid.  The read must touch only that metric's
npz members: ``pickle.loads``/``pickle.load`` are monkeypatch-
forbidden for the duration of the column read and the store's
``unpickle`` counter must stay flat, so a regression back to
whole-dict deserialisation fails the benchmark, not just slows it.

Throughput is published to ``BENCH_<rev>.json`` as
``store_points_per_second`` (durable writes) and
``column_points_per_second`` (finalized reads) via ``bench_record``.
"""

import pickle
import time

from repro.experiments.sweep import SweepSpec
from repro.metrics.report import render_table
from repro.store import ResultStore

#: Grid size: the ISSUE's 10^4-point scale for columnar reads.
POINTS = 10_000

#: Points per npz shard — large enough that a column read opens a
#: handful of zip archives, small enough to exercise stitching.
SHARD_POINTS = 1024


def _value(x: int):
    return {
        "y": x * 0.5,
        "n": x,
        "ok": x % 3 != 0,
        "seed_mod": (x * 7919) % 1000,
    }


def test_bench_store(run_once, bench_record, tmp_path, monkeypatch):
    spec = SweepSpec("bench-store", axes={"x": list(range(POINTS))})
    name = "bench_runner"

    with ResultStore(tmp_path / "store", code_version="bench") as store:
        points = spec.points()

        def write_finalize_read():
            t0 = time.perf_counter()
            for point in points:
                store.store_point(
                    spec, name, point, _value(point.params["x"])
                )
            t1 = time.perf_counter()
            shards = store.finalize_sweep(
                spec, name, shard_points=SHARD_POINTS
            )
            t2 = time.perf_counter()
            # The contract under test: a column read never deserialises
            # a per-point dict.  Forbid pickle outright while reading.
            unpickles_before = store.stats["unpickle"]
            with monkeypatch.context() as patched:
                patched.setattr(
                    pickle, "loads", _forbidden, raising=True
                )
                patched.setattr(
                    pickle, "load", _forbidden, raising=True
                )
                column = store.read_column(spec, name, "y")
            t3 = time.perf_counter()
            assert store.stats["unpickle"] == unpickles_before
            return shards, column, t1 - t0, t2 - t1, t3 - t2

        shards, column, write_s, finalize_s, read_s = run_once(
            write_finalize_read
        )

        values = column.tolist()
        assert len(values) == POINTS
        assert values == [x * 0.5 for x in range(POINTS)]
        assert shards == (POINTS + SHARD_POINTS - 1) // SHARD_POINTS
        report = store.verify()
        assert report["ok"], report

    write_rate = POINTS / max(write_s, 1e-9)
    read_rate = POINTS / max(read_s, 1e-9)
    print()
    print(
        render_table(
            ["phase", "wall_s", "points/s"],
            [
                ["durable writes", round(write_s, 3), round(write_rate)],
                ["finalize", round(finalize_s, 3), ""],
                ["column read", round(read_s, 4), round(read_rate)],
            ],
            title=(
                f"Result store: {POINTS} points, "
                f"{shards} shards of {SHARD_POINTS}"
            ),
        )
    )
    bench_record(
        points=POINTS,
        shard_points=SHARD_POINTS,
        write_s=round(write_s, 4),
        finalize_s=round(finalize_s, 4),
        column_read_s=round(read_s, 5),
        store_points_per_second=round(write_rate),
        column_points_per_second=round(read_rate),
        unpickled_during_read=0,
    )
    # Reading one metric off 10^4 points must be far cheaper than
    # writing them; this wall is intentionally loose (CI noise) while
    # still catching a fallback to per-point payload loads.
    assert read_s < write_s, (read_s, write_s)


def _forbidden(*args, **kwargs):
    raise AssertionError(
        "pickle deserialisation during a columnar metric read"
    )
