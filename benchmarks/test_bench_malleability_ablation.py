"""A2 — malleability reconfiguration-cost sensitivity.

The malleable strategy pays ``2 x quantum_phases x cost`` of
reconfiguration per run.  Sweeping the cost shows the break-even
against exclusive co-scheduling: cheap reconfiguration is pure win on
held node-seconds; expensive reconfiguration erodes the turnaround
until co-scheduling is faster (the paper's "significant modifications
to application code" caveat made quantitative).
"""

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.metrics.report import render_series
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.malleability import MalleableStrategy

COSTS = (0.0, 5.0, 30.0, 120.0)


def _sweep(seed: int = 0):
    app = standard_hybrid_app(
        SUPERCONDUCTING,
        iterations=4,
        classical_phase_seconds=120.0,
        classical_nodes=8,
        min_classical_nodes=1,
    )
    co_records, _ = run_campaign(
        CoScheduleStrategy(), [app], SUPERCONDUCTING, seed=seed
    )
    baseline = co_records[0].turnaround
    turnarounds = []
    held = []
    for cost in COSTS:
        records, _ = run_campaign(
            MalleableStrategy(reconfiguration_cost=cost),
            [app],
            SUPERCONDUCTING,
            seed=seed,
        )
        turnarounds.append(records[0].turnaround)
        held.append(records[0].classical_held_node_seconds)
    return baseline, turnarounds, held


def test_bench_malleability_ablation(run_once):
    baseline, turnarounds, held = run_once(_sweep, seed=0)
    print()
    print(
        render_series(
            "reconfig_cost_s",
            ["malleable_turnaround_s", "held_node_s"],
            list(COSTS),
            [turnarounds, held],
            title=(
                "A2: reconfiguration-cost sensitivity "
                f"(coschedule baseline {baseline:.0f}s)"
            ),
        )
    )
    # Turnaround grows monotonically with the cost.
    assert turnarounds == sorted(turnarounds)
    # Zero-cost malleability matches the rigid baseline on turnaround.
    assert abs(turnarounds[0] - baseline) < 1.0
    # The expensive end is strictly worse than the rigid baseline.
    assert turnarounds[-1] > baseline
    # Held node-seconds grow exactly with the time spent reconfiguring:
    # each quantum phase pays the cost once at min nodes (post-shrink)
    # and once at full nodes (post-grow).
    quantum_phases = 4
    min_nodes, full_nodes = 1, 8
    expected_delta = (
        (min_nodes + full_nodes) * COSTS[-1] * quantum_phases
    )
    measured_delta = held[-1] - held[0]
    assert abs(measured_delta - expected_delta) < 0.1 * expected_delta, (
        measured_delta,
        expected_delta,
    )
