"""Benchmark-suite configuration.

Every benchmark regenerates one paper artefact (table/figure) end to
end, so a single measured round per benchmark is the meaningful unit:
``rounds=1, iterations=1`` via ``benchmark.pedantic``.  The benchmark
*value* is the wall time to regenerate the artefact; the artefact's
correctness is asserted through the experiment's claim checks.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn(*args, **kwargs)`` exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
