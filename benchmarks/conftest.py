"""Benchmark-suite configuration.

Every benchmark regenerates one paper artefact (table/figure) end to
end, so a single measured round per benchmark is the meaningful unit:
``rounds=1, iterations=1`` via ``benchmark.pedantic``.  The benchmark
*value* is the wall time to regenerate the artefact; the artefact's
correctness is asserted through the experiment's claim checks.

Besides pytest-benchmark's console table, the suite emits a
machine-readable ``BENCH_<rev>.json`` at the repository root — one
entry of wall seconds per benchmark plus any extra metrics a benchmark
records via the ``bench_record`` fixture — so the performance
trajectory is tracked across PRs as data, not prose.  ``<rev>`` is
``$REPRO_BENCH_REV`` or the current ``git`` short hash.
"""

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall seconds per benchmark, plus freeform metric blocks, collected
#: over the session and flushed to BENCH_<rev>.json at exit.
_RESULTS = {"benchmarks": {}, "metrics": {}}


def _revision() -> str:
    rev = os.environ.get("REPRO_BENCH_REV")
    if rev:
        return rev
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=_REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


@pytest.fixture
def run_once(benchmark):
    """Run ``fn(*args, **kwargs)`` exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def pytest_runtest_logreport(report):
    """Record wall seconds for every benchmark test that ran, whether
    it used ``run_once`` or the raw ``benchmark`` fixture."""
    if report.when != "call" or not report.passed:
        return
    path, _, name = report.nodeid.partition("::")
    # This conftest also sees reports from tests/ in full-suite runs;
    # the bench naming convention identifies our own files regardless
    # of the invocation directory.
    if not Path(path).name.startswith("test_bench"):
        return
    _RESULTS["benchmarks"][name] = round(report.duration, 6)


@pytest.fixture
def bench_record(request):
    """Attach extra machine-readable metrics to BENCH_<rev>.json."""

    def record(**metrics):
        _RESULTS["metrics"].setdefault(request.node.name, {}).update(
            metrics
        )

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS["benchmarks"] and not _RESULTS["metrics"]:
        return
    revision = _revision()
    path = _REPO_ROOT / f"BENCH_{revision}.json"
    # Merge into any existing summary for this revision so a partial
    # run (one benchmark file) never erases the rest of the record.
    benchmarks, metrics = {}, {}
    try:
        previous = json.loads(path.read_text())
        benchmarks.update(previous.get("benchmarks", {}))
        metrics.update(previous.get("metrics", {}))
    except (OSError, ValueError):
        pass
    benchmarks.update(_RESULTS["benchmarks"])
    metrics.update(_RESULTS["metrics"])
    payload = {
        "revision": revision,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "benchmarks": dict(sorted(benchmarks.items())),
        "metrics": dict(sorted(metrics.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
