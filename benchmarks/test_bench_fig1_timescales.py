"""Benchmark E1 — regenerate Fig 1 (quantum job time scales)."""

from repro.experiments.fig1_timescales import run
from repro.experiments.harness import assert_all_claims


def test_bench_fig1_timescales(run_once):
    result = run_once(run, seed=0)
    print()
    print(result.render())
    assert_all_claims(result)
